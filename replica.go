package minoaner

// Journal-shipping read replicas. A Replica bootstraps its full state
// from a primary server's /snapshot endpoint, then tails the primary's
// mutation journal over GET /journal?since=<epoch>, applying each
// entry through Index.Replay. Because replayed entries reproduce the
// primary's mutations exactly — same deltas, same order, same store
// bookkeeping — the replica's matches, statistics, and saved snapshot
// are bit-identical to the primary's at every epoch it reaches; reads
// served from the replica's Index are lock-free as always.
//
// The cursor protocol is the epoch number: the replica asks for
// entries after its current epoch and the primary answers with the
// contiguous tail, or 410 Gone when Compact dropped it. Each response
// also carries the primary's compaction count; when it moves past the
// replica's own, the primary rewrote write-side state the journal
// cannot reproduce (term-table compaction), so the replica falls back
// to a full snapshot resync — the same recovery as a truncated
// journal. Resyncs replace the replica's state in place and readers
// observe them as one atomic epoch switch.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Replica tails a primary's mutation journal into a local Index. Use
// NewReplica, then Bootstrap (or let Run bootstrap), serve Index()
// read-only, and keep Run going in the background. A Replica has one
// writer — its own tailing loop; never mutate Index() directly.
type Replica struct {
	primary      string
	client       *http.Client
	poll         time.Duration
	backoffMax   time.Duration
	snapshotPath string // "" = unlinked temp file
	jitter       uint64 // splitmix64 state; advanced per sleep

	ix atomic.Pointer[Index]

	primaryEpoch atomic.Uint64
	resyncs      atomic.Int64
	applied      atomic.Int64
}

// ReplicaOption customizes NewReplica.
type ReplicaOption func(*Replica)

// WithReplicaClient sets the HTTP client used against the primary
// (default http.DefaultClient). Per-request cancellation comes from
// the Run/Bootstrap context, so a client timeout is not required.
func WithReplicaClient(c *http.Client) ReplicaOption {
	return func(r *Replica) { r.client = c }
}

// WithReplicaPoll sets the journal poll interval when the replica is
// caught up (default 500ms). Polls after a non-empty tail are
// immediate, so a busy primary is followed at replay speed.
func WithReplicaPoll(d time.Duration) ReplicaOption {
	return func(r *Replica) {
		if d > 0 {
			r.poll = d
		}
	}
}

// WithReplicaBackoffMax caps the exponential backoff between retries
// after errors (default 30s).
func WithReplicaBackoffMax(d time.Duration) ReplicaOption {
	return func(r *Replica) {
		if d > 0 {
			r.backoffMax = d
		}
	}
}

// WithReplicaJitterSeed seeds the deterministic jitter stream that
// spreads poll and backoff sleeps by ±25%, so a fleet of replicas does
// not phase-lock on one primary. Replication results never depend on
// the seed — only sleep timing does.
func WithReplicaJitterSeed(seed uint64) ReplicaOption {
	return func(r *Replica) { r.jitter = seed }
}

// WithReplicaSnapshotPath lands bootstrap snapshots at the given path
// (written atomically: temp file + fsync + rename) and serves the
// index mapped from that file, keeping it around for inspection or a
// warm restart. By default snapshots land in an unlinked temporary
// file the filesystem reclaims once the replica drops the mapping.
func WithReplicaSnapshotPath(path string) ReplicaOption {
	return func(r *Replica) { r.snapshotPath = path }
}

// NewReplica prepares a replica of the primary at the given base URL
// (e.g. "http://primary:8080"). No network traffic happens until
// Bootstrap or Run.
func NewReplica(primaryURL string, opts ...ReplicaOption) (*Replica, error) {
	u, err := url.Parse(primaryURL)
	if err != nil {
		return nil, fmt.Errorf("minoaner: primary URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("minoaner: primary URL %q must be http or https", primaryURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("minoaner: primary URL %q has no host", primaryURL)
	}
	r := &Replica{
		primary:    strings.TrimRight(primaryURL, "/"),
		client:     http.DefaultClient,
		poll:       500 * time.Millisecond,
		backoffMax: 30 * time.Second,
	}
	for _, opt := range opts {
		opt(r)
	}
	return r, nil
}

// Index returns the replica's local index — nil until the first
// Bootstrap succeeds. The pointer is stable across resyncs: serve it
// for the replica's whole lifetime.
func (r *Replica) Index() *Index { return r.ix.Load() }

// ReplicaStatus is a point-in-time snapshot of replication progress
// (the /stats and /metrics payload of a replica server).
type ReplicaStatus struct {
	// Primary is the primary's base URL.
	Primary string
	// Epoch is the replica's current epoch (0 before bootstrap).
	Epoch uint64
	// PrimaryEpoch is the primary epoch last observed.
	PrimaryEpoch uint64
	// Lag is PrimaryEpoch - Epoch, clamped at 0: how many mutations
	// the replica still has to replay.
	Lag uint64
	// Resyncs counts completed full-snapshot resyncs (the initial
	// bootstrap not included).
	Resyncs int64
	// Applied counts journal entries applied through Replay.
	Applied int64
}

// Status reports the replica's replication progress.
func (r *Replica) Status() ReplicaStatus {
	st := ReplicaStatus{
		Primary:      r.primary,
		PrimaryEpoch: r.primaryEpoch.Load(),
		Resyncs:      r.resyncs.Load(),
		Applied:      r.applied.Load(),
	}
	if ix := r.ix.Load(); ix != nil {
		st.Epoch = ix.Epoch()
	}
	if st.PrimaryEpoch > st.Epoch {
		st.Lag = st.PrimaryEpoch - st.Epoch
	}
	return st
}

// Bootstrap (re)loads the replica's full state from the primary's
// /snapshot endpoint. The first call creates the index; later calls —
// a resync after ErrJournalTruncated — replace its state in place, so
// a server built over Index() keeps serving and readers observe the
// resync as one atomic epoch switch.
func (r *Replica) Bootstrap(ctx context.Context) (*Index, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.primary+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("minoaner: primary answered %s to /snapshot", resp.Status)
	}
	loaded, err := r.landSnapshot(resp.Body)
	if err != nil {
		return nil, err
	}
	r.primaryEpoch.Store(loaded.Epoch())
	if cur := r.ix.Load(); cur != nil {
		cur.replaceState(loaded)
		return cur, nil
	}
	r.ix.Store(loaded)
	return loaded, nil
}

// landSnapshot streams the primary's snapshot body to disk and opens
// it mapped, so a bootstrap is O(1) memory however large the snapshot
// — the former in-memory buffering held the entire image (and its
// decoded form) on the heap at once.
func (r *Replica) landSnapshot(body io.Reader) (*Index, error) {
	if r.snapshotPath != "" {
		if err := writeFileAtomic(r.snapshotPath, func(w io.Writer) error {
			_, err := io.Copy(w, body)
			return err
		}); err != nil {
			return nil, fmt.Errorf("minoaner: landing primary snapshot at %s: %w", r.snapshotPath, err)
		}
		ix, err := OpenIndexFile(r.snapshotPath)
		if err != nil {
			return nil, fmt.Errorf("minoaner: loading primary snapshot: %w", err)
		}
		return ix, nil
	}
	f, err := os.CreateTemp("", "minoaner-replica-*.msnp")
	if err != nil {
		return nil, fmt.Errorf("minoaner: landing primary snapshot: %w", err)
	}
	tmp := f.Name()
	// Unlink once mapped (or failed): the mapping keeps the data
	// reachable until the index drops it.
	defer os.Remove(tmp)
	if _, err := io.Copy(f, body); err != nil {
		f.Close()
		return nil, fmt.Errorf("minoaner: landing primary snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("minoaner: landing primary snapshot: %w", err)
	}
	ix, err := OpenIndexFile(tmp)
	if err != nil {
		return nil, fmt.Errorf("minoaner: loading primary snapshot: %w", err)
	}
	return ix, nil
}

// Run tails the primary until the context ends, bootstrapping first if
// Bootstrap has not succeeded yet. Transient errors retry with
// exponential backoff and jitter; ErrJournalTruncated (the primary
// compacted past the cursor) and replay divergence trigger a full
// snapshot resync. Run returns the context's error on cancellation —
// its only way to stop.
func (r *Replica) Run(ctx context.Context) error {
	backoff := r.poll
	for r.ix.Load() == nil {
		if _, err := r.Bootstrap(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if serr := r.sleep(ctx, r.jittered(backoff)); serr != nil {
				return serr
			}
			backoff = r.nextBackoff(backoff)
			continue
		}
		backoff = r.poll
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := r.syncOnce(ctx)
		switch {
		case err == nil:
			backoff = r.poll
			if n == 0 {
				// Caught up: wait one (jittered) poll interval. After a
				// non-empty tail, poll again immediately to drain.
				if serr := r.sleep(ctx, r.jittered(r.poll)); serr != nil {
					return serr
				}
			}
		case errors.Is(err, ErrJournalTruncated):
			if _, berr := r.Bootstrap(ctx); berr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if serr := r.sleep(ctx, r.jittered(backoff)); serr != nil {
					return serr
				}
				backoff = r.nextBackoff(backoff)
				continue
			}
			r.resyncs.Add(1)
			backoff = r.poll
		default:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if serr := r.sleep(ctx, r.jittered(backoff)); serr != nil {
				return serr
			}
			backoff = r.nextBackoff(backoff)
		}
	}
}

// syncOnce performs one poll: fetch the journal tail after the
// replica's epoch and replay it entry by entry as the stream arrives.
// It returns how many entries were applied; errors wrapping
// ErrJournalTruncated mean the caller must resync from a snapshot.
func (r *Replica) syncOnce(ctx context.Context) (int, error) {
	ix := r.ix.Load()
	cursor := ix.Epoch()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/journal?since=%d", r.primary, cursor), nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		// Drain (bounded) so the connection is reusable.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if pe, perr := strconv.ParseUint(resp.Header.Get(headerEpoch), 10, 64); perr == nil {
		r.primaryEpoch.Store(pe)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return 0, fmt.Errorf("%w: primary compacted past cursor %d", ErrJournalTruncated, cursor)
	default:
		return 0, fmt.Errorf("minoaner: primary answered %s to /journal", resp.Status)
	}
	// A compaction count differing from the replica's anchor means the
	// primary's write-side state diverged from anything the journal can
	// reproduce — even when the entry tail itself looks contiguous.
	if pc, perr := strconv.ParseUint(resp.Header.Get(headerCompactions), 10, 64); perr == nil && pc != ix.Compactions() {
		return 0, fmt.Errorf("%w: primary compacted (%d compactions, replica anchored at %d)",
			ErrJournalTruncated, pc, ix.Compactions())
	}
	if pe := r.primaryEpoch.Load(); pe < cursor {
		// The primary answers from an older epoch than ours — it
		// restarted from an earlier snapshot. Converge to its state.
		return 0, fmt.Errorf("%w: primary at epoch %d behind replica epoch %d", ErrJournalTruncated, pe, cursor)
	}
	br := bufio.NewReader(resp.Body)
	applied := 0
	for {
		line, rerr := br.ReadString('\n')
		if trimmed := strings.TrimSpace(line); trimmed != "" {
			n, aerr := r.applyLine(ctx, ix, trimmed)
			if aerr != nil {
				return applied, aerr
			}
			applied += n
		}
		if rerr == io.EOF {
			return applied, nil
		}
		if rerr != nil {
			return applied, rerr
		}
	}
}

// applyLine decodes one NDJSON journal record and replays it.
func (r *Replica) applyLine(ctx context.Context, ix *Index, line string) (int, error) {
	var rec journalEntryJSON
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return 0, fmt.Errorf("minoaner: parsing journal record: %w", err)
	}
	op, err := journalOpCode(rec.Op)
	if err != nil {
		return 0, fmt.Errorf("minoaner: journal record for epoch %d: %w", rec.Seq, err)
	}
	n, err := ix.Replay(ctx, []JournalEntry{{
		Seq:      rec.Seq,
		Op:       op,
		Side:     rec.Side,
		Subjects: rec.Subjects,
		Triples:  rec.Triples,
		Delta:    rec.Delta,
	}})
	r.applied.Add(int64(n))
	return n, err
}

// nextBackoff doubles the delay up to the configured cap.
func (r *Replica) nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > r.backoffMax {
		d = r.backoffMax
	}
	return d
}

// jittered spreads d over [0.75d, 1.25d) using a splitmix64 stream —
// deterministic from the seed, so replication never draws on
// wall-clock entropy, yet distinct seeds de-synchronize a fleet.
// Called only from the Run goroutine.
func (r *Replica) jittered(d time.Duration) time.Duration {
	r.jitter += 0x9e3779b97f4a7c15
	z := r.jitter
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	span := int64(d) / 2
	if span <= 0 {
		return d
	}
	return d - time.Duration(span/2) + time.Duration(int64(z%uint64(span)))
}

// sleep waits d or until the context ends, releasing the timer either
// way.
func (r *Replica) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
