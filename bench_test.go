// Benchmarks regenerating the paper's evaluation artifacts, one per
// table (plus ablations). They exercise the same code paths as
// cmd/benchtables at a reduced scale so `go test -bench=.` completes in
// minutes; run cmd/benchtables for full-scale numbers.
package minoaner_test

import (
	"fmt"
	"testing"

	"minoaner/internal/baseline"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/experiments"
	"minoaner/internal/linda"
	"minoaner/internal/paris"
	"minoaner/internal/rimom"
	"minoaner/internal/sigma"
)

// benchScale keeps a full -bench=. run to a couple of minutes.
const benchScale = 0.1

var benchDatasets map[string]*datagen.Dataset

func dataset(b *testing.B, name string) *datagen.Dataset {
	b.Helper()
	if benchDatasets == nil {
		benchDatasets = make(map[string]*datagen.Dataset)
	}
	if ds, ok := benchDatasets[name]; ok {
		return ds
	}
	g, ok := datagen.ByName(name)
	if !ok {
		b.Fatalf("unknown dataset %q", name)
	}
	ds, err := g.Build(datagen.Options{Seed: 42, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	benchDatasets[name] = ds
	return ds
}

func eachDataset(b *testing.B, fn func(b *testing.B, ds *datagen.Dataset)) {
	for _, g := range datagen.Generators() {
		g := g
		b.Run(g.Name, func(b *testing.B) {
			fn(b, dataset(b, g.Name))
		})
	}
}

// BenchmarkTableI_Generate measures dataset synthesis (the substrate
// behind Table I).
func BenchmarkTableI_Generate(b *testing.B) {
	for _, g := range datagen.Generators() {
		g := g
		b.Run(g.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.Build(datagen.Options{Seed: 42, Scale: benchScale}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableII_Blocking measures Name + Token blocking with purging
// and the block statistics of Table II.
func BenchmarkTableII_Blocking(b *testing.B) {
	eachDataset(b, func(b *testing.B, ds *datagen.Dataset) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := experiments.BlockStats(ds)
			if r.UnionStats.Recall == 0 {
				b.Fatal("no recall")
			}
		}
	})
}

// BenchmarkTableIII benchmarks regenerate the method-comparison rows of
// Table III, one per system.

func BenchmarkTableIII_MinoanER(b *testing.B) {
	eachDataset(b, func(b *testing.B, ds *datagen.Dataset) {
		cfg := core.DefaultConfig()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := core.NewMatcher(ds.KB1, ds.KB2, cfg)
			if err != nil {
				b.Fatal(err)
			}
			reportF1(b, m.Run().Matches, ds)
		}
	})
}

func BenchmarkTableIII_BSL(b *testing.B) {
	eachDataset(b, func(b *testing.B, ds *datagen.Dataset) {
		cfg := baseline.DefaultConfig()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := baseline.Run(ds.KB1, ds.KB2, ds.GT, cfg)
			reportF1(b, res.BestMatches, ds)
		}
	})
}

func BenchmarkTableIII_PARIS(b *testing.B) {
	eachDataset(b, func(b *testing.B, ds *datagen.Dataset) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reportF1(b, paris.Run(ds.KB1, ds.KB2, paris.DefaultConfig()), ds)
		}
	})
}

func BenchmarkTableIII_SiGMa(b *testing.B) {
	eachDataset(b, func(b *testing.B, ds *datagen.Dataset) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reportF1(b, sigma.Run(ds.KB1, ds.KB2, sigma.DefaultConfig()), ds)
		}
	})
}

func BenchmarkTableIII_LINDA(b *testing.B) {
	eachDataset(b, func(b *testing.B, ds *datagen.Dataset) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reportF1(b, linda.Run(ds.KB1, ds.KB2, linda.DefaultConfig()), ds)
		}
	})
}

func BenchmarkTableIII_RiMOM(b *testing.B) {
	eachDataset(b, func(b *testing.B, ds *datagen.Dataset) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reportF1(b, rimom.Run(ds.KB1, ds.KB2, rimom.DefaultConfig()), ds)
		}
	})
}

func reportF1(b *testing.B, matches []eval.Pair, ds *datagen.Dataset) {
	b.Helper()
	m := eval.Evaluate(matches, ds.GT)
	b.ReportMetric(100*m.F1, "F1%")
}

// BenchmarkAblation measures the cost and quality of each MinoanER
// variant on the heterogeneous Music dataset — the design choices
// DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	ds := dataset(b, "BBCmusic-DBpedia")
	for _, v := range experiments.Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := experiments.RunVariant(ds, v)
				b.ReportMetric(100*m.F1, "F1%")
			}
		})
	}
}

// BenchmarkWorkers measures the scaling of the parallel candidate
// scorer (the engineering extension the non-iterative design enables).
func BenchmarkWorkers(b *testing.B) {
	ds := dataset(b, "YAGO-IMDb")
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				m, err := core.NewMatcher(ds.KB1, ds.KB2, cfg)
				if err != nil {
					b.Fatal(err)
				}
				m.Run()
			}
		})
	}
}
