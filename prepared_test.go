package minoaner_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"minoaner"
)

// sampleDeltaURIs picks a spread of KB2 entity URIs for delta tests.
func sampleDeltaURIs(b *minoaner.Benchmark, n int) []string {
	uris := b.KB2.URIs()
	if n >= len(uris) {
		return uris
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, uris[i*len(uris)/n])
	}
	return out
}

// assertSameQueryResult compares everything a QueryKB Result reports
// except stage timings.
func assertSameQueryResult(t *testing.T, label string, full, fast *minoaner.Result) {
	t.Helper()
	if !reflect.DeepEqual(fast.Matches, full.Matches) {
		t.Fatalf("%s: prepared path found %d matches, full plan %d", label, len(fast.Matches), len(full.Matches))
	}
	if fast.ByName != full.ByName || fast.ByValue != full.ByValue || fast.ByRank != full.ByRank ||
		fast.DiscardedByReciprocity != full.DiscardedByReciprocity ||
		fast.NameBlocks != full.NameBlocks || fast.TokenBlocks != full.TokenBlocks ||
		fast.NameComparisons != full.NameComparisons || fast.TokenComparisons != full.TokenComparisons ||
		fast.PurgedBlocks != full.PurgedBlocks {
		t.Fatalf("%s: accounting diverges:\nfull: %+v\nfast: %+v", label, *full, *fast)
	}
}

// TestQueryKBPreparedEquivalence is the public equivalence guard: for
// every benchmark, QueryKB over the prepared substrate answers
// single-entity and batch deltas bit-identically to the full plan.
func TestQueryKBPreparedEquivalence(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		t.Run(name, func(t *testing.T) {
			b, err := minoaner.GenerateBenchmark(name, 42, 0.12)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := minoaner.BuildIndex(b.KB1, b.KB2, minoaner.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			ix.Prepare()
			if !ix.Prepared() {
				t.Fatal("Prepare did not build the substrate")
			}
			uris := sampleDeltaURIs(b, 6)
			deltas := map[string][]string{
				"single": uris[:1],
				"batch":  uris,
			}
			for label, sel := range deltas {
				delta, err := b.DeltaKB("delta", sel...)
				if err != nil {
					t.Fatal(err)
				}
				full, err := ix.QueryKBFull(context.Background(), delta)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := ix.QueryKB(context.Background(), delta)
				if err != nil {
					t.Fatal(err)
				}
				assertSameQueryResult(t, label, full, fast)
			}
		})
	}
}

// TestQueryKBFallsBackUnprepared: without Prepare, QueryKB must run
// the full plan and still answer correctly.
func TestQueryKBFallsBackUnprepared(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 42, 0.1)
	if ix.Prepared() {
		t.Fatal("fresh index unexpectedly prepared")
	}
	delta, err := b.DeltaKB("delta", sampleDeltaURIs(b, 1)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.QueryKB(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ix.QueryKBFull(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	assertSameQueryResult(t, "unprepared fallback", full, res)

	// QueryKBFast prepares on demand and agrees too.
	fast, err := ix.QueryKBFast(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Prepared() {
		t.Error("QueryKBFast did not prepare the index")
	}
	assertSameQueryResult(t, "fast", full, fast)
}

// TestSnapshotCarriesPreparedSubstrate: a prepared index snapshot
// round-trips bit-for-bit including the substrate, and the loaded index
// serves the prepared path without re-freezing.
func TestSnapshotCarriesPreparedSubstrate(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 9, 0.1)
	ix.Prepare()

	var first bytes.Buffer
	if err := minoaner.SaveIndex(&first, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := minoaner.LoadIndex(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Prepared() {
		t.Fatal("loaded index lost the prepared substrate")
	}
	var second bytes.Buffer
	if err := minoaner.SaveIndex(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("prepared snapshot not bit-identical after load: %d vs %d bytes", first.Len(), second.Len())
	}

	delta, err := b.DeltaKB("delta", sampleDeltaURIs(b, 3)...)
	if err != nil {
		t.Fatal(err)
	}
	full, err := loaded.QueryKBFull(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := loaded.QueryKB(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	assertSameQueryResult(t, "loaded prepared", full, fast)

	// Back-compat: a snapshot saved without the substrate (the pre-
	// section-8 layout) still loads, reports unprepared, and prepares on
	// demand.
	_, bare, _ := buildBenchmarkIndex(t, "Restaurant", 9, 0.1)
	var old bytes.Buffer
	if err := minoaner.SaveIndex(&old, bare); err != nil {
		t.Fatal(err)
	}
	reloaded, err := minoaner.LoadIndex(bytes.NewReader(old.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Prepared() {
		t.Fatal("substrate-free snapshot claims to be prepared")
	}
	res, err := reloaded.QueryKBFast(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	assertSameQueryResult(t, "on-demand prepare after old snapshot", full, res)
}

// TestQueryKBPreparedCancellation: cancelling the context stops a
// prepared-path query mid-probe with ctx.Err() and no partial Result.
func TestQueryKBPreparedCancellation(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Rexa-DBLP", 42, 0.1)
	ix.Prepare()
	delta, err := b.DeltaKB("delta", sampleDeltaURIs(b, 20)...)
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: rejected before the first probe.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := ix.QueryKB(ctx, delta); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-cancelled query: res=%v err=%v", res, err)
	}

	// Cancel as the candidate scoring of the probed blocks starts.
	for _, stage := range []string{"token-blocking", "value-candidates"} {
		ctx, cancel := context.WithCancel(context.Background())
		res, err := ix.QueryKB(ctx, delta, minoaner.WithProgress(func(p minoaner.StageProgress) {
			if p.Stage == stage && !p.Done {
				cancel()
			}
		}))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at %s: err = %v, want context.Canceled", stage, err)
		}
		if res != nil {
			t.Errorf("cancel at %s returned a partial Result", stage)
		}
	}
}

// TestIndexQueryEdgeCases covers the constant-time lookup's corners:
// no arguments, duplicate URIs in one call, and a URI naming an entity
// in both KBs.
func TestIndexQueryEdgeCases(t *testing.T) {
	t.Run("empty argument list", func(t *testing.T) {
		_, ix, _ := buildBenchmarkIndex(t, "Restaurant", 1, 0.1)
		if results := ix.Query(); len(results) != 0 {
			t.Errorf("Query() returned %d results, want 0", len(results))
		}
	})

	t.Run("duplicate URIs in one call", func(t *testing.T) {
		b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 1, 0.1)
		uri := b.KB2.URIs()[0]
		results := ix.Query(uri, uri, uri)
		if len(results) != 3 {
			t.Fatalf("got %d results, want 3", len(results))
		}
		for i, qr := range results {
			if !reflect.DeepEqual(qr, results[0]) {
				t.Errorf("result %d diverges from result 0: %+v vs %+v", i, qr, results[0])
			}
		}
	})

	t.Run("URI present in both KBs", func(t *testing.T) {
		doc := `<http://both/x> <http://v/name> "Shared Unique Name" .
<http://both/x> <http://v/desc> "identical twin description tokens" .
`
		kb1, err := minoaner.LoadKB("a", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		kb2, err := minoaner.LoadKB("b", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		ix, err := minoaner.BuildIndex(kb1, kb2, minoaner.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		results := ix.Query("http://both/x")
		if len(results) != 1 {
			t.Fatalf("got %d results", len(results))
		}
		qr := results[0]
		if !qr.In1 || !qr.In2 {
			t.Fatalf("In1=%v In2=%v, want both true", qr.In1, qr.In2)
		}
		want := minoaner.Match{URI1: "http://both/x", URI2: "http://both/x"}
		if len(qr.Matches) != 1 || qr.Matches[0] != want {
			t.Errorf("matches = %+v, want exactly the self-match", qr.Matches)
		}
	})
}
