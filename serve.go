package minoaner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Serve layer: an http.Handler exposing one Index over JSON. Lookup
// endpoints are read-only against the current epoch, so one Index
// safely serves any number of concurrent requests; responses for the
// same query are identical under any interleaving. With mutations
// enabled (WithMutations), POST /upsert and POST /delete absorb
// entity-level changes: readers keep answering from the old epoch
// until the new one swaps in atomically, and after the swap every
// response is bit-identical to a server over a from-scratch rebuild.
//
// Endpoints:
//
//	GET  /healthz              liveness: {"status":"ok"}
//	GET  /stats                IndexStats, epoch, journal length, and
//	                           per-endpoint request/latency counters
//	GET  /metrics              the same counters in Prometheus text
//	                           exposition format (requests, errors,
//	                           latency totals per route; epoch, journal
//	                           length, shard count, match/block gauges)
//	GET  /resolve?uri=U&uri=V  per-URI match lookup
//	POST /resolve              same, URIs from JSON {"uris": [...]}
//	GET  /resolve/stream       anytime re-resolution of the index's KB
//	                           pair as NDJSON, one confirmed pair per
//	                           line in decreasing quality, flushed as
//	                           written. Budget and scheduling via
//	                           budget_ms, max_pairs, max_comparisons,
//	                           and strategy=weight|blocks query params;
//	                           draining an unbudgeted stream yields
//	                           exactly the epoch's match set
//	POST /delta?name=N&lenient=1
//	                           resolve an N-Triples delta (request body)
//	                           against the index's first KB
//	POST /upsert?side=2&lenient=1
//	                           absorb an N-Triples delta (request body)
//	                           into the index (requires WithMutations)
//	POST /delete               remove entities, JSON
//	                           {"side": 2, "uris": [...]} (requires
//	                           WithMutations)
//	GET  /journal?since=N      the mutation journal entries after epoch
//	                           N as streamed NDJSON (one entry per
//	                           line, flushed as written); 410 Gone
//	                           when Compact dropped them. Every
//	                           response carries the X-Minoaner-Epoch
//	                           and X-Minoaner-Compactions headers —
//	                           the replication cursor protocol.
//	GET  /snapshot             the full index snapshot (SaveIndex
//	                           bytes): the bootstrap/resync source for
//	                           replicas
//
// Error responses, 404/405s, and everything the mutation endpoints
// return carry Cache-Control: no-store — an intermediary must never
// serve a stale error or a pre-mutation match set from cache.
type server struct {
	ix      *Index
	mux     *http.ServeMux
	mutable bool
	replica *Replica
	metrics map[string]*endpointMetrics
	stream  streamMetrics
}

// streamMetrics aggregates the /resolve/stream traffic the per-route
// counters cannot express: how many pairs streamed out, and how long
// clients waited for the first one.
type streamMetrics struct {
	// pairs counts every NDJSON record written across all stream
	// requests.
	pairs atomic.Int64
	// firstMatches counts the requests that emitted at least one pair.
	firstMatches atomic.Int64
	// firstMatchMicros accumulates the time-to-first-match of those
	// requests; firstMatchMicros/firstMatches is the average TTFM.
	firstMatchMicros atomic.Int64
}

// endpointMetrics aggregates one route's traffic (lock-free; the map
// itself is fixed at construction).
type endpointMetrics struct {
	requests    atomic.Int64
	errors      atomic.Int64
	totalMicros atomic.Int64
}

// ServerOption customizes NewServer.
type ServerOption func(*server)

// WithMutations enables the /upsert and /delete endpoints. The index
// must be mutable (Index.Mutable); requests against a read-only server
// fail with 403.
func WithMutations() ServerOption {
	return func(s *server) { s.mutable = true }
}

// WithReplica attaches the replica whose replication progress the
// server exposes: /stats gains a replica object and /metrics the
// primary-epoch, lag, resync, and applied-entry series. The server
// itself stays read-only — a replica's mutations arrive through its
// journal-tailing loop, never over this handler.
func WithReplica(rep *Replica) ServerOption {
	return func(s *server) { s.replica = rep }
}

// Replication protocol headers: every /journal response reports the
// primary's current epoch and compaction count, captured atomically
// with the streamed entries.
const (
	headerEpoch       = "X-Minoaner-Epoch"
	headerCompactions = "X-Minoaner-Compactions"
)

// serveRoutes are the instrumented endpoint labels, in the order the
// /metrics exposition lists them.
var serveRoutes = []string{"healthz", "stats", "metrics", "resolve", "resolve_stream", "delta", "upsert", "delete", "journal", "snapshot", "other"}

// NewServer returns an http.Handler serving resolution queries over the
// index. It prepares the index's delta substrate (see Index.Prepare) if
// the loaded snapshot did not already carry it, so /delta resolves in
// O(|delta|) from the first request.
func NewServer(ix *Index, opts ...ServerOption) http.Handler {
	ix.Prepare()
	s := &server{ix: ix, mux: http.NewServeMux(), metrics: make(map[string]*endpointMetrics, len(serveRoutes))}
	for _, opt := range opts {
		opt(s)
	}
	for _, route := range serveRoutes {
		s.metrics[route] = &endpointMetrics{}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /resolve", s.handleResolveGet)
	s.mux.HandleFunc("POST /resolve", s.handleResolvePost)
	s.mux.HandleFunc("GET /resolve/stream", s.handleResolveStream)
	s.mux.HandleFunc("POST /delta", s.handleDelta)
	s.mux.HandleFunc("POST /upsert", s.handleUpsert)
	s.mux.HandleFunc("POST /delete", s.handleDelete)
	s.mux.HandleFunc("GET /journal", s.handleJournal)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	return s
}

// routeLabel buckets a request path for the metrics map.
func routeLabel(path string) string {
	switch path {
	case "/healthz":
		return "healthz"
	case "/stats":
		return "stats"
	case "/metrics":
		return "metrics"
	case "/resolve":
		return "resolve"
	case "/resolve/stream":
		return "resolve_stream"
	case "/delta":
		return "delta"
	case "/upsert":
		return "upsert"
	case "/delete":
		return "delete"
	case "/journal":
		return "journal"
	case "/snapshot":
		return "snapshot"
	}
	return "other"
}

// statusWriter intercepts the response status so error responses —
// including the mux's own 404/405 — carry Cache-Control: no-store and
// are counted per endpoint.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		if code >= 400 {
			w.Header().Set("Cache-Control", "no-store")
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher, so streaming handlers (the /journal
// tail) push each record to the client as it is written instead of
// buffering the whole response until the handler returns.
func (w *statusWriter) Flush() {
	f, ok := w.ResponseWriter.(http.Flusher)
	if !ok {
		return
	}
	if w.status == 0 {
		w.WriteHeader(http.StatusOK)
	}
	f.Flush()
}

// Unwrap exposes the wrapped writer to http.ResponseController, which
// reaches optional interfaces (deadlines, hijacking) through it.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	//minoaner:wallclock endpoint latency metric; feeds /metrics counters, never match output
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	m := s.metrics[routeLabel(r.URL.Path)]
	m.requests.Add(1)
	if sw.status >= 400 {
		m.errors.Add(1)
	}
	//minoaner:wallclock endpoint latency metric; feeds /metrics counters, never match output
	m.totalMicros.Add(time.Since(start).Microseconds())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing to do on write failure
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	// The statusWriter adds Cache-Control: no-store for every >= 400
	// status; set it here too so writeError stays safe even when a
	// handler is mounted without the instrumented wrapper.
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"matches": len(s.ix.cur.Load().matches),
	})
}

// statsJSON mirrors IndexStats with JSON tags, extended with the
// serving-side epoch and traffic counters.
type statsJSON struct {
	KB1                    kbStatsJSON                  `json:"kb1"`
	KB2                    kbStatsJSON                  `json:"kb2"`
	Epoch                  uint64                       `json:"epoch"`
	JournalLength          int                          `json:"journal_length"`
	Mutable                bool                         `json:"mutable"`
	Matches                int                          `json:"matches"`
	ByName                 int                          `json:"by_name"`
	ByValue                int                          `json:"by_value"`
	ByRank                 int                          `json:"by_rank"`
	DiscardedByReciprocity int                          `json:"discarded_by_reciprocity"`
	NameBlocks             int                          `json:"name_blocks"`
	TokenBlocks            int                          `json:"token_blocks"`
	NameComparisons        int64                        `json:"name_comparisons"`
	TokenComparisons       int64                        `json:"token_comparisons"`
	PurgedBlocks           int                          `json:"purged_blocks"`
	Shards                 int                          `json:"shards"`
	Sharded                bool                         `json:"sharded"`
	Replica                *replicaStatsJSON            `json:"replica,omitempty"`
	Stream                 streamStatsJSON              `json:"stream"`
	Endpoints              map[string]endpointStatsJSON `json:"endpoints"`
}

// streamStatsJSON reports the /resolve/stream traffic: pairs streamed
// out and the average latency to each request's first confirmed match.
type streamStatsJSON struct {
	PairsEmitted    int64 `json:"pairs_emitted"`
	FirstMatches    int64 `json:"first_matches"`
	AvgFirstMatchUS int64 `json:"avg_time_to_first_match_us"`
}

// replicaStatsJSON reports a replica server's replication progress.
type replicaStatsJSON struct {
	Primary      string `json:"primary"`
	PrimaryEpoch uint64 `json:"primary_epoch"`
	LagEpochs    uint64 `json:"lag_epochs"`
	Resyncs      int64  `json:"resyncs"`
	Applied      int64  `json:"entries_applied"`
}

type endpointStatsJSON struct {
	Requests     int64 `json:"requests"`
	Errors       int64 `json:"errors"`
	AvgLatencyUS int64 `json:"avg_latency_us"`
}

type kbStatsJSON struct {
	Name     string `json:"name"`
	Entities int    `json:"entities"`
	Triples  int    `json:"triples"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	e := s.ix.cur.Load()
	st := s.ix.statsOf(e)
	endpoints := make(map[string]endpointStatsJSON, len(s.metrics))
	for route, m := range s.metrics {
		reqs := m.requests.Load()
		es := endpointStatsJSON{Requests: reqs, Errors: m.errors.Load()}
		if reqs > 0 {
			es.AvgLatencyUS = m.totalMicros.Load() / reqs
		}
		endpoints[route] = es
	}
	var replica *replicaStatsJSON
	if s.replica != nil {
		rs := s.replica.Status()
		replica = &replicaStatsJSON{
			Primary:      rs.Primary,
			PrimaryEpoch: rs.PrimaryEpoch,
			LagEpochs:    rs.Lag,
			Resyncs:      rs.Resyncs,
			Applied:      rs.Applied,
		}
	}
	stream := streamStatsJSON{
		PairsEmitted: s.stream.pairs.Load(),
		FirstMatches: s.stream.firstMatches.Load(),
	}
	if stream.FirstMatches > 0 {
		stream.AvgFirstMatchUS = s.stream.firstMatchMicros.Load() / stream.FirstMatches
	}
	if s.mutable || s.replica != nil {
		// Stats on a mutable (or replicating) server describe a moving
		// target.
		w.Header().Set("Cache-Control", "no-store")
	}
	writeJSON(w, http.StatusOK, statsJSON{
		KB1:                    kbStatsJSON{Name: e.kb1.Name(), Entities: st.KB1.Entities, Triples: st.KB1.Triples},
		KB2:                    kbStatsJSON{Name: e.kb2.Name(), Entities: st.KB2.Entities, Triples: st.KB2.Triples},
		Epoch:                  st.Epoch,
		JournalLength:          st.JournalLength,
		Mutable:                s.mutable && s.ix.Mutable(),
		Matches:                st.Matches,
		ByName:                 st.ByName,
		ByValue:                st.ByValue,
		ByRank:                 st.ByRank,
		DiscardedByReciprocity: st.DiscardedByReciprocity,
		NameBlocks:             st.NameBlocks,
		TokenBlocks:            st.TokenBlocks,
		NameComparisons:        st.NameComparisons,
		TokenComparisons:       st.TokenComparisons,
		PurgedBlocks:           st.PurgedBlocks,
		Shards:                 st.Shards,
		Sharded:                e.sharded != nil,
		Replica:                replica,
		Stream:                 stream,
		Endpoints:              endpoints,
	})
}

// handleMetrics exposes the traffic counters and index gauges in
// Prometheus text exposition format. Routes are listed in serveRoutes
// order, so the output is deterministic for a given traffic state.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := s.ix.cur.Load()
	st := s.ix.statsOf(e)
	var b strings.Builder
	b.WriteString("# HELP minoaner_requests_total Requests served, by route.\n")
	b.WriteString("# TYPE minoaner_requests_total counter\n")
	for _, route := range serveRoutes {
		fmt.Fprintf(&b, "minoaner_requests_total{route=%q} %d\n", route, s.metrics[route].requests.Load())
	}
	b.WriteString("# HELP minoaner_request_errors_total Requests answered with status >= 400, by route.\n")
	b.WriteString("# TYPE minoaner_request_errors_total counter\n")
	for _, route := range serveRoutes {
		fmt.Fprintf(&b, "minoaner_request_errors_total{route=%q} %d\n", route, s.metrics[route].errors.Load())
	}
	b.WriteString("# HELP minoaner_request_duration_microseconds_total Cumulative request wall time, by route.\n")
	b.WriteString("# TYPE minoaner_request_duration_microseconds_total counter\n")
	for _, route := range serveRoutes {
		fmt.Fprintf(&b, "minoaner_request_duration_microseconds_total{route=%q} %d\n", route, s.metrics[route].totalMicros.Load())
	}
	streamSeries := []struct {
		name, help string
		value      int64
	}{
		{"minoaner_stream_pairs_total", "Confirmed pairs emitted by /resolve/stream responses.", s.stream.pairs.Load()},
		{"minoaner_stream_first_match_total", "/resolve/stream requests that emitted at least one pair.", s.stream.firstMatches.Load()},
		{"minoaner_stream_time_to_first_match_microseconds_total", "Cumulative latency to the first emitted pair, over first-match requests.", s.stream.firstMatchMicros.Load()},
	}
	for _, c := range streamSeries {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	sharded := 0
	if e.sharded != nil {
		sharded = 1
	}
	mutable := 0
	if s.mutable && s.ix.Mutable() {
		mutable = 1
	}
	gauges := []struct {
		name, help string
		value      int64
	}{
		{"minoaner_epoch", "Current index epoch (0 = fresh build, +1 per absorbed mutation).", int64(st.Epoch)},
		{"minoaner_journal_length", "Mutation journal entries since the last compaction.", int64(st.JournalLength)},
		{"minoaner_shards", "Configured shard count of the index substrate (1 = unsharded).", int64(st.Shards)},
		{"minoaner_sharded_active", "Whether scatter-gather resolution is active (partitioned substrate derived).", int64(sharded)},
		{"minoaner_mutable", "Whether this server accepts /upsert and /delete.", int64(mutable)},
		{"minoaner_matches", "Resolved match pairs in the current epoch.", int64(st.Matches)},
		{"minoaner_kb1_entities", "Entities in the first indexed KB.", int64(st.KB1.Entities)},
		{"minoaner_kb2_entities", "Entities in the second indexed KB.", int64(st.KB2.Entities)},
		{"minoaner_name_blocks", "Name blocks (|B_N|).", int64(st.NameBlocks)},
		{"minoaner_token_blocks", "Token blocks after purging (|B_T|).", int64(st.TokenBlocks)},
		{"minoaner_name_comparisons", "Name block comparisons (||B_N||).", st.NameComparisons},
		{"minoaner_token_comparisons", "Token block comparisons after purging (||B_T||).", st.TokenComparisons},
		{"minoaner_purged_blocks", "Token blocks removed by Block Purging.", int64(st.PurgedBlocks)},
	}
	for _, g := range gauges {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.value)
	}
	if s.replica != nil {
		rs := s.replica.Status()
		repSeries := []struct {
			name, typ, help string
			value           int64
		}{
			{"minoaner_replica_primary_epoch", "gauge", "Primary epoch last observed by the journal-tailing loop.", int64(rs.PrimaryEpoch)},
			{"minoaner_replica_lag_epochs", "gauge", "Epochs the replica trails the primary (0 = caught up).", int64(rs.Lag)},
			{"minoaner_replica_resyncs_total", "counter", "Full snapshot resyncs after journal truncation or divergence.", rs.Resyncs},
			{"minoaner_replica_entries_applied_total", "counter", "Journal entries applied through Replay.", rs.Applied},
		}
		for _, g := range repSeries {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", g.name, g.help, g.name, g.typ, g.name, g.value)
		}
	}
	if s.mutable || s.replica != nil {
		w.Header().Set("Cache-Control", "no-store")
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}

// matchJSON is one resolved pair.
type matchJSON struct {
	URI1 string `json:"uri1"`
	URI2 string `json:"uri2"`
}

// queryResultJSON answers one queried URI.
type queryResultJSON struct {
	URI     string      `json:"uri"`
	In1     bool        `json:"in_kb1"`
	In2     bool        `json:"in_kb2"`
	Matches []matchJSON `json:"matches"`
}

type resolveResponseJSON struct {
	Results []queryResultJSON `json:"results"`
}

// maxResolveURIs bounds one /resolve request; batches beyond it should
// be split client-side.
const maxResolveURIs = 10000

func (s *server) resolve(w http.ResponseWriter, uris []string) {
	if len(uris) == 0 {
		writeError(w, http.StatusBadRequest, "no URIs given: pass uri= query parameters or a JSON body {\"uris\": [...]}")
		return
	}
	if len(uris) > maxResolveURIs {
		writeError(w, http.StatusRequestEntityTooLarge, "%d URIs in one request (limit %d)", len(uris), maxResolveURIs)
		return
	}
	results := s.ix.Query(uris...)
	resp := resolveResponseJSON{Results: make([]queryResultJSON, len(results))}
	for i, qr := range results {
		out := queryResultJSON{URI: qr.URI, In1: qr.In1, In2: qr.In2, Matches: []matchJSON{}}
		for _, m := range qr.Matches {
			out.Matches = append(out.Matches, matchJSON{URI1: m.URI1, URI2: m.URI2})
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleResolveGet(w http.ResponseWriter, r *http.Request) {
	s.resolve(w, r.URL.Query()["uri"])
}

// maxResolveBytes bounds one POST /resolve body.
const maxResolveBytes = 16 << 20

func (s *server) handleResolvePost(w http.ResponseWriter, r *http.Request) {
	var body struct {
		URIs []string `json:"uris"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResolveBytes))
	if err := dec.Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxResolveBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	s.resolve(w, body.URIs)
}

// streamPairJSON is one NDJSON record of the /resolve/stream response.
type streamPairJSON struct {
	URI1      string  `json:"uri1"`
	URI2      string  `json:"uri2"`
	Score     float64 `json:"score"`
	Heuristic string  `json:"heuristic"`
}

// handleResolveStream re-resolves the index's KB pair as an anytime
// stream: one NDJSON record per confirmed pair, best pairs first,
// flushed as written so a latency-budgeted client acts on each match
// the moment it is confirmed. budget_ms bounds wall clock (as a
// deadline on the resolving context), max_pairs and max_comparisons
// bound work, and strategy selects the pair scheduler (weight —
// the default — or blocks). Draining an unbudgeted stream yields
// exactly the epoch's match set.
func (s *server) handleResolveStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var opts []StreamOption
	if raw := q.Get("max_pairs"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid max_pairs=%q: want a positive integer", raw)
			return
		}
		opts = append(opts, WithMaxPairs(n))
	}
	if raw := q.Get("max_comparisons"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid max_comparisons=%q: want a positive integer", raw)
			return
		}
		opts = append(opts, WithMaxComparisons(n))
	}
	switch q.Get("strategy") {
	case "", "weight":
		// WeightOrdered is the default.
	case "blocks":
		opts = append(opts, WithStreamStrategy(BlockRoundRobin))
	default:
		writeError(w, http.StatusBadRequest, "invalid strategy=%q: want weight or blocks", q.Get("strategy"))
		return
	}
	ctx := r.Context()
	if raw := q.Get("budget_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms < 1 {
			writeError(w, http.StatusBadRequest, "invalid budget_ms=%q: want a positive integer", raw)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	e := s.ix.cur.Load()
	if err := e.materializeKB1(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := e.materializeKB2(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ch, err := ResolveStream(ctx, e.kb1, e.kb2, e.cfg, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A budget-truncated response is complete for its budget but must
	// never be served from a cache as "the" match set.
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	//minoaner:wallclock time-to-first-match metric; feeds /stats and /metrics, never match output
	start := time.Now()
	emitted := int64(0)
	for sp := range ch {
		if emitted == 0 {
			s.stream.firstMatches.Add(1)
			//minoaner:wallclock time-to-first-match metric; feeds /stats and /metrics, never match output
			s.stream.firstMatchMicros.Add(time.Since(start).Microseconds())
		}
		if err := enc.Encode(streamPairJSON{URI1: sp.URI1, URI2: sp.URI2, Score: sp.Score, Heuristic: sp.Heuristic}); err != nil {
			// Client went away mid-stream. Returning cancels r.Context(),
			// which stops the resolving goroutine.
			return
		}
		emitted++
		s.stream.pairs.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// deltaResponseJSON reports a /delta resolution.
type deltaResponseJSON struct {
	Name         string      `json:"name"`
	Entities     int         `json:"entities"`
	Matches      []matchJSON `json:"matches"`
	SkippedLines int         `json:"skipped_lines,omitempty"`
}

// maxDeltaBytes bounds one /delta or /upsert body: the endpoints absorb
// small deltas, not bulk re-ingests.
const maxDeltaBytes = 64 << 20

func (s *server) handleDelta(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "delta"
	}
	lenient := r.URL.Query().Get("lenient") == "1"
	src := Source{Name: name, R: http.MaxBytesReader(w, r.Body, maxDeltaBytes), Lenient: lenient}
	res, err := s.ix.QueryReader(r.Context(), src)
	if err != nil {
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &tooLarge):
			writeError(w, http.StatusRequestEntityTooLarge, "delta exceeds %d bytes", maxDeltaBytes)
		case r.Context().Err() != nil:
			writeError(w, http.StatusServiceUnavailable, "request cancelled")
		default:
			writeError(w, http.StatusBadRequest, "resolving delta: %v", err)
		}
		return
	}
	resp := deltaResponseJSON{
		Name:         name,
		Matches:      []matchJSON{},
		SkippedLines: res.SkippedLines2,
	}
	for _, m := range res.Matches {
		resp.Matches = append(resp.Matches, matchJSON{URI1: m.URI1, URI2: m.URI2})
	}
	resp.Entities = res.kb2.Len()
	writeJSON(w, http.StatusOK, resp)
}

// mutationResponseJSON reports an absorbed mutation.
type mutationResponseJSON struct {
	Epoch        uint64 `json:"epoch"`
	Side         int    `json:"side"`
	Subjects     int    `json:"subjects"`
	Matches      int    `json:"matches"`
	SkippedLines int    `json:"skipped_lines,omitempty"`
	NoOp         bool   `json:"no_op,omitempty"`
}

// requireMutable guards the mutation endpoints.
func (s *server) requireMutable(w http.ResponseWriter) bool {
	if !s.mutable {
		writeError(w, http.StatusForbidden, "mutations are disabled on this server (start it with -mutable)")
		return false
	}
	if !s.ix.Mutable() {
		writeError(w, http.StatusConflict, "index is not mutable: its snapshot predates source retention; rebuild it from sources")
		return false
	}
	return true
}

// parseSide reads the side query/body parameter (default 2: the
// "delta" side).
func parseSide(raw string) (int, error) {
	switch raw {
	case "", "2":
		return 2, nil
	case "1":
		return 1, nil
	}
	return 0, fmt.Errorf("side must be 1 or 2, got %q", raw)
}

func (s *server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	// Mutation responses must never be cached, success included: they
	// describe a state transition, not a resource.
	w.Header().Set("Cache-Control", "no-store")
	if !s.requireMutable(w) {
		return
	}
	side, err := parseSide(r.URL.Query().Get("side"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	lenient := r.URL.Query().Get("lenient") == "1"
	body := http.MaxBytesReader(w, r.Body, maxDeltaBytes)
	var delta *KB
	var skipped int
	if lenient {
		delta, skipped, err = LoadKBLenient("upsert", body)
	} else {
		delta, err = LoadKB("upsert", body)
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "delta exceeds %d bytes", maxDeltaBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "parsing upsert delta: %v", err)
		return
	}
	if delta.Len() == 0 {
		writeError(w, http.StatusBadRequest, "upsert delta contains no entities")
		return
	}
	out, err := s.ix.applyMutation(r.Context(), side, delta, nil)
	if err != nil {
		s.writeMutationError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, mutationResponseJSON{
		Epoch:        out.epoch,
		Side:         side,
		Subjects:     delta.Len(),
		Matches:      out.matches,
		SkippedLines: skipped,
		NoOp:         out.noop,
	})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if !s.requireMutable(w) {
		return
	}
	var body struct {
		Side int      `json:"side"`
		URIs []string `json:"uris"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResolveBytes))
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if body.Side == 0 {
		body.Side = 2
	}
	if body.Side != 1 && body.Side != 2 {
		writeError(w, http.StatusBadRequest, "side must be 1 or 2, got %d", body.Side)
		return
	}
	if len(body.URIs) == 0 {
		writeError(w, http.StatusBadRequest, "no URIs given: pass a JSON body {\"side\": 2, \"uris\": [...]}")
		return
	}
	out, err := s.ix.applyMutation(r.Context(), body.Side, nil, body.URIs)
	if err != nil {
		s.writeMutationError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, mutationResponseJSON{
		Epoch:    out.epoch,
		Side:     body.Side,
		Subjects: len(body.URIs),
		Matches:  out.matches,
		NoOp:     out.noop,
	})
}

// journalEntryJSON is one NDJSON record of the /journal stream — the
// wire form of a JournalEntry.
type journalEntryJSON struct {
	Seq      uint64   `json:"seq"`
	Op       string   `json:"op"`
	Side     int      `json:"side"`
	Subjects []string `json:"subjects"`
	Triples  int      `json:"triples,omitempty"`
	Delta    []string `json:"delta,omitempty"`
}

// journalOpNames maps journal op codes to their wire names (and back,
// via journalOpCode).
func journalOpName(op byte) string {
	switch op {
	case JournalUpsert:
		return "upsert"
	case JournalDelete:
		return "delete"
	}
	return fmt.Sprintf("op%d", op)
}

func journalOpCode(name string) (byte, error) {
	switch name {
	case "upsert":
		return JournalUpsert, nil
	case "delete":
		return JournalDelete, nil
	}
	return 0, fmt.Errorf("unknown journal op %q", name)
}

// handleJournal streams the journal tail after the given cursor as
// NDJSON, one entry per line, flushed as written so a tailing replica
// sees entries without waiting for the response to finish. The
// response headers carry the epoch and compaction count the entries
// lead to; a cursor Compact has truncated past answers 410 Gone.
func (s *server) handleJournal(w http.ResponseWriter, r *http.Request) {
	since := uint64(0)
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid since=%q: %v", raw, err)
			return
		}
		since = v
	}
	tail, err := s.ix.JournalSince(since)
	w.Header().Set(headerEpoch, strconv.FormatUint(tail.Epoch, 10))
	w.Header().Set(headerCompactions, strconv.FormatUint(tail.Compactions, 10))
	w.Header().Set("Cache-Control", "no-store")
	if err != nil {
		writeError(w, http.StatusGone, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range tail.Entries {
		je := &tail.Entries[i]
		rec := journalEntryJSON{
			Seq:      je.Seq,
			Op:       journalOpName(je.Op),
			Side:     je.Side,
			Subjects: je.Subjects,
			Triples:  je.Triples,
			Delta:    je.Delta,
		}
		if err := enc.Encode(rec); err != nil {
			return // client went away mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSnapshot streams the index snapshot (SaveIndex bytes): the
// bootstrap and resync source for replicas. Every section is
// checksummed, so a transfer cut short fails the client's LoadIndex
// instead of silently corrupting it. The write side is briefly
// excluded while the snapshot streams (readers are unaffected), so the
// bytes always describe one consistent epoch/journal pair.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	// On a mid-stream failure the status line is already out; the
	// truncated body fails the client's checksum verification.
	_ = SaveIndex(w, s.ix)
}

func (s *server) writeMutationError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrNotMutable):
		writeError(w, http.StatusConflict, "%v", err)
	case r.Context().Err() != nil:
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		writeError(w, http.StatusBadRequest, "applying mutation: %v", err)
	}
}
