package minoaner

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Serve layer: an http.Handler exposing one immutable Index over JSON.
// All lookup endpoints are read-only against preloaded state, so one
// Index safely serves any number of concurrent requests; responses for
// the same query are identical under any interleaving.
//
// Endpoints:
//
//	GET  /healthz              liveness: {"status":"ok"}
//	GET  /stats                IndexStats of the served index
//	GET  /resolve?uri=U&uri=V  per-URI match lookup
//	POST /resolve              same, URIs from JSON {"uris": [...]}
//	POST /delta?name=N&lenient=1
//	                           resolve an N-Triples delta (request body)
//	                           against the index's first KB
type server struct {
	ix  *Index
	mux *http.ServeMux
}

// NewServer returns an http.Handler serving resolution queries over the
// index. It prepares the index's delta substrate (see Index.Prepare) if
// the loaded snapshot did not already carry it, so /delta resolves in
// O(|delta|) from the first request.
func NewServer(ix *Index) http.Handler {
	ix.Prepare()
	s := &server{ix: ix, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /resolve", s.handleResolveGet)
	s.mux.HandleFunc("POST /resolve", s.handleResolvePost)
	s.mux.HandleFunc("POST /delta", s.handleDelta)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing to do on write failure
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"matches": len(s.ix.matches),
	})
}

// statsJSON mirrors IndexStats with JSON tags.
type statsJSON struct {
	KB1                    kbStatsJSON `json:"kb1"`
	KB2                    kbStatsJSON `json:"kb2"`
	Matches                int         `json:"matches"`
	ByName                 int         `json:"by_name"`
	ByValue                int         `json:"by_value"`
	ByRank                 int         `json:"by_rank"`
	DiscardedByReciprocity int         `json:"discarded_by_reciprocity"`
	NameBlocks             int         `json:"name_blocks"`
	TokenBlocks            int         `json:"token_blocks"`
	NameComparisons        int64       `json:"name_comparisons"`
	TokenComparisons       int64       `json:"token_comparisons"`
	PurgedBlocks           int         `json:"purged_blocks"`
}

type kbStatsJSON struct {
	Name     string `json:"name"`
	Entities int    `json:"entities"`
	Triples  int    `json:"triples"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	writeJSON(w, http.StatusOK, statsJSON{
		KB1:                    kbStatsJSON{Name: s.ix.kb1.Name(), Entities: st.KB1.Entities, Triples: st.KB1.Triples},
		KB2:                    kbStatsJSON{Name: s.ix.kb2.Name(), Entities: st.KB2.Entities, Triples: st.KB2.Triples},
		Matches:                st.Matches,
		ByName:                 st.ByName,
		ByValue:                st.ByValue,
		ByRank:                 st.ByRank,
		DiscardedByReciprocity: st.DiscardedByReciprocity,
		NameBlocks:             st.NameBlocks,
		TokenBlocks:            st.TokenBlocks,
		NameComparisons:        st.NameComparisons,
		TokenComparisons:       st.TokenComparisons,
		PurgedBlocks:           st.PurgedBlocks,
	})
}

// matchJSON is one resolved pair.
type matchJSON struct {
	URI1 string `json:"uri1"`
	URI2 string `json:"uri2"`
}

// queryResultJSON answers one queried URI.
type queryResultJSON struct {
	URI     string      `json:"uri"`
	In1     bool        `json:"in_kb1"`
	In2     bool        `json:"in_kb2"`
	Matches []matchJSON `json:"matches"`
}

type resolveResponseJSON struct {
	Results []queryResultJSON `json:"results"`
}

// maxResolveURIs bounds one /resolve request; batches beyond it should
// be split client-side.
const maxResolveURIs = 10000

func (s *server) resolve(w http.ResponseWriter, uris []string) {
	if len(uris) == 0 {
		writeError(w, http.StatusBadRequest, "no URIs given: pass uri= query parameters or a JSON body {\"uris\": [...]}")
		return
	}
	if len(uris) > maxResolveURIs {
		writeError(w, http.StatusRequestEntityTooLarge, "%d URIs in one request (limit %d)", len(uris), maxResolveURIs)
		return
	}
	results := s.ix.Query(uris...)
	resp := resolveResponseJSON{Results: make([]queryResultJSON, len(results))}
	for i, qr := range results {
		out := queryResultJSON{URI: qr.URI, In1: qr.In1, In2: qr.In2, Matches: []matchJSON{}}
		for _, m := range qr.Matches {
			out.Matches = append(out.Matches, matchJSON{URI1: m.URI1, URI2: m.URI2})
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleResolveGet(w http.ResponseWriter, r *http.Request) {
	s.resolve(w, r.URL.Query()["uri"])
}

// maxResolveBytes bounds one POST /resolve body.
const maxResolveBytes = 16 << 20

func (s *server) handleResolvePost(w http.ResponseWriter, r *http.Request) {
	var body struct {
		URIs []string `json:"uris"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResolveBytes))
	if err := dec.Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxResolveBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	s.resolve(w, body.URIs)
}

// deltaResponseJSON reports a /delta resolution.
type deltaResponseJSON struct {
	Name         string      `json:"name"`
	Entities     int         `json:"entities"`
	Matches      []matchJSON `json:"matches"`
	SkippedLines int         `json:"skipped_lines,omitempty"`
}

// maxDeltaBytes bounds one /delta body: the endpoint resolves small
// deltas, not bulk re-ingests.
const maxDeltaBytes = 64 << 20

func (s *server) handleDelta(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "delta"
	}
	lenient := r.URL.Query().Get("lenient") == "1"
	src := Source{Name: name, R: http.MaxBytesReader(w, r.Body, maxDeltaBytes), Lenient: lenient}
	res, err := s.ix.QueryReader(r.Context(), src)
	if err != nil {
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &tooLarge):
			writeError(w, http.StatusRequestEntityTooLarge, "delta exceeds %d bytes", maxDeltaBytes)
		case r.Context().Err() != nil:
			writeError(w, http.StatusServiceUnavailable, "request cancelled")
		default:
			writeError(w, http.StatusBadRequest, "resolving delta: %v", err)
		}
		return
	}
	resp := deltaResponseJSON{
		Name:         name,
		Matches:      []matchJSON{},
		SkippedLines: res.SkippedLines2,
	}
	for _, m := range res.Matches {
		resp.Matches = append(resp.Matches, matchJSON{URI1: m.URI1, URI2: m.URI2})
	}
	resp.Entities = res.kb2.Len()
	writeJSON(w, http.StatusOK, resp)
}
