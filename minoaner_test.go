package minoaner_test

import (
	"strings"
	"testing"

	"minoaner"
)

const kb1Doc = `
<http://a/r1> <http://v/name> "Joe's Diner" .
<http://a/r1> <http://v/phone> "555-1234" .
<http://a/r1> <http://v/in> <http://a/city1> .
<http://a/r2> <http://v/name> "Central Cafe" .
<http://a/r2> <http://v/in> <http://a/city1> .
<http://a/city1> <http://v/label> "Springfield" .
`

const kb2Doc = `
<http://b/x1> <http://w/title> "joe s diner" .
<http://b/x1> <http://w/tel> "555 1234" .
<http://b/x1> <http://w/locatedIn> <http://b/c1> .
<http://b/x2> <http://w/title> "central cafe" .
<http://b/x2> <http://w/locatedIn> <http://b/c1> .
<http://b/c1> <http://w/name> "Springfield" .
`

func loadPair(t *testing.T) (*minoaner.KB, *minoaner.KB) {
	t.Helper()
	kb1, err := minoaner.LoadKB("a", strings.NewReader(kb1Doc))
	if err != nil {
		t.Fatal(err)
	}
	kb2, err := minoaner.LoadKB("b", strings.NewReader(kb2Doc))
	if err != nil {
		t.Fatal(err)
	}
	return kb1, kb2
}

func TestLoadKB(t *testing.T) {
	kb1, _ := loadPair(t)
	if kb1.Len() != 3 {
		t.Errorf("entities = %d, want 3", kb1.Len())
	}
	st := kb1.Stats()
	if st.Triples != 6 || st.Relations != 1 || st.Attributes != 3 {
		t.Errorf("stats = %+v", st)
	}
	if kb1.Name() != "a" {
		t.Errorf("name = %q", kb1.Name())
	}
}

func TestLoadKBErrors(t *testing.T) {
	if _, err := minoaner.LoadKB("bad", strings.NewReader("not ntriples")); err == nil {
		t.Error("malformed document accepted")
	}
	if _, err := minoaner.LoadKBFile("nope", "/does/not/exist.nt"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestResolveEndToEnd(t *testing.T) {
	kb1, kb2 := loadPair(t)
	res, err := minoaner.Resolve(kb1, kb2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"http://a/r1":    "http://b/x1",
		"http://a/r2":    "http://b/x2",
		"http://a/city1": "http://b/c1",
	}
	got := map[string]string{}
	for _, m := range res.Matches {
		got[m.URI1] = m.URI2
	}
	for u1, u2 := range want {
		if got[u1] != u2 {
			t.Errorf("%s matched to %q, want %q (all: %v)", u1, got[u1], u2, res.Matches)
		}
	}
	if res.ByName+res.ByValue+res.ByRank < len(res.Matches) {
		t.Errorf("heuristic accounting inconsistent: %+v", res)
	}
}

func TestResolveInvalidConfig(t *testing.T) {
	kb1, kb2 := loadPair(t)
	if _, err := minoaner.Resolve(kb1, kb2, minoaner.Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestGroundTruthEvaluate(t *testing.T) {
	kb1, kb2 := loadPair(t)
	gtDoc := "http://a/r1,http://b/x1\nhttp://a/r2,http://b/x2\n"
	gt, err := minoaner.LoadGroundTruth(kb1, kb2, strings.NewReader(gtDoc))
	if err != nil {
		t.Fatal(err)
	}
	if gt.Len() != 2 {
		t.Fatalf("gt len = %d", gt.Len())
	}
	res, err := minoaner.Resolve(kb1, kb2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Evaluate(gt)
	if m.F1 != 1 {
		t.Errorf("metrics = %v", m)
	}
	if !strings.Contains(m.String(), "F1=100.00%") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := minoaner.BenchmarkNames()
	if len(names) != 4 || names[0] != "Restaurant" {
		t.Errorf("names = %v", names)
	}
}

func TestGenerateBenchmarkAndResolve(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := minoaner.Resolve(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Evaluate(b.GroundTruth)
	if m.F1 < 0.95 {
		t.Errorf("Restaurant F1 = %v", m)
	}
}

func TestGenerateBenchmarkUnknown(t *testing.T) {
	if _, err := minoaner.GenerateBenchmark("Nope", 1, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBenchmarkSerialization(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var nt1, nt2, gtCSV strings.Builder
	if err := b.WriteKB1(&nt1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteKB2(&nt2); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteGroundTruth(&gtCSV); err != nil {
		t.Fatal(err)
	}
	// Round-trip: reload through the public API and evaluate.
	kb1, err := minoaner.LoadKB("kb1", strings.NewReader(nt1.String()))
	if err != nil {
		t.Fatal(err)
	}
	kb2, err := minoaner.LoadKB("kb2", strings.NewReader(nt2.String()))
	if err != nil {
		t.Fatal(err)
	}
	gt, err := minoaner.LoadGroundTruth(kb1, kb2, strings.NewReader(gtCSV.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := minoaner.Resolve(kb1, kb2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Evaluate(gt); m.F1 < 0.95 {
		t.Errorf("round-tripped benchmark F1 = %v", m)
	}
}

func TestDeduplicateFacade(t *testing.T) {
	doc := `
<http://d/a1> <http://v/name> "Unique Restaurant Alpha" .
<http://d/a2> <http://v/name> "unique restaurant alpha!" .
<http://d/b> <http://v/name> "Totally Other Place" .
`
	k, err := minoaner.LoadKB("dirty", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	clusters := minoaner.Deduplicate(k, minoaner.DefaultDedupConfig())
	if len(clusters) != 1 || len(clusters[0]) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	got := map[string]bool{clusters[0][0]: true, clusters[0][1]: true}
	if !got["http://d/a1"] || !got["http://d/a2"] {
		t.Errorf("wrong duplicates: %v", clusters)
	}
}

func TestKBBinaryRoundTripThroughFacade(t *testing.T) {
	kb1, _ := loadPair(t)
	var buf strings.Builder
	if err := kb1.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := minoaner.ReadKBBinary(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != kb1.Len() || back.Stats() != kb1.Stats() {
		t.Errorf("round trip changed the KB: %+v vs %+v", back.Stats(), kb1.Stats())
	}
	if _, err := minoaner.ReadKBBinary(strings.NewReader("junk")); err == nil {
		t.Error("corrupt binary accepted")
	}
}

func TestAblationFlagsExposed(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := minoaner.DefaultConfig()
	cfg.DisableH1 = true
	res, err := minoaner.Resolve(b.KB1, b.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ByName != 0 {
		t.Errorf("H1 ran while disabled: %d", res.ByName)
	}
}
