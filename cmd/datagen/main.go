// Command datagen writes one of the synthetic benchmark stand-ins to
// disk as two N-Triples files plus a ground-truth CSV, ready for
// cmd/minoaner.
//
// Usage:
//
//	datagen -dataset Restaurant -out ./data [-seed 42] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"minoaner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		dataset = flag.String("dataset", "Restaurant", "benchmark name: "+strings.Join(minoaner.BenchmarkNames(), ", "))
		out     = flag.String("out", ".", "output directory")
		seed    = flag.Int64("seed", 42, "generator seed")
		scale   = flag.Float64("scale", 1.0, "size multiplier")
	)
	flag.Parse()

	b, err := minoaner.GenerateBenchmark(*dataset, *seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	slug := strings.ToLower(strings.ReplaceAll(b.Name, "-", "_"))
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		return path
	}
	p1 := write(slug+"_kb1.nt", func(f *os.File) error { return b.WriteKB1(f) })
	p2 := write(slug+"_kb2.nt", func(f *os.File) error { return b.WriteKB2(f) })
	pg := write(slug+"_gt.csv", func(f *os.File) error { return b.WriteGroundTruth(f) })

	fmt.Printf("%s: KB1 %d entities, KB2 %d entities, %d matches\n",
		b.Name, b.KB1.Len(), b.KB2.Len(), b.GroundTruth.Len())
	fmt.Printf("wrote %s, %s, %s\n", p1, p2, pg)
}
