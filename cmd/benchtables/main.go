// Command benchtables regenerates the paper's evaluation artifacts over
// the synthetic benchmark stand-ins:
//
//	benchtables -table 1          # Table I  (dataset statistics)
//	benchtables -table 2          # Table II (block statistics)
//	benchtables -table 3          # Table III (method comparison)
//	benchtables -table all        # everything
//	benchtables -ablations        # MinoanER ablation study
//	benchtables -json BENCH_pipeline.json   # per-stage pipeline timings
//	benchtables -ingest-json BENCH_ingest.json -ingest-workers 1,2,4,8
//	                              # ingest-to-matches profile across worker counts
//	benchtables -query-json BENCH_query.json
//	                              # index build/save/load cost + per-query latency
//	benchtables -delta-json BENCH_delta.json -delta-workers 1,2,4,8
//	                              # prepared-side vs full-plan delta resolution latency
//	benchtables -update-json BENCH_update.json -update-workers 1,2,4,8
//	                              # epoch-update (live mutation) vs full-rebuild latency
//	benchtables -shard-json BENCH_shard.json -shard-counts 1,2,4,8
//	                              # scatter-gather delta + mutation latency vs shard count
//
// Absolute numbers differ from the paper (the substrates are synthetic
// stand-ins; see DESIGN.md §2); the comparative shapes are the
// reproduction target and are recorded in EXPERIMENTS.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"minoaner"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/experiments"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
	"minoaner/internal/rdf"
)

// envJSON records the execution environment; every BENCH_*.json
// document carries one so recorded latencies can be normalized across
// machines.
type envJSON struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
}

func benchEnv() envJSON {
	return envJSON{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
	}
}

// stageBenchJSON is one stage's cost within a dataset's pipeline run.
type stageBenchJSON struct {
	Stage      string `json:"stage"`
	Nanos      int64  `json:"ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// datasetBenchJSON is the per-stage timing profile of one benchmark.
type datasetBenchJSON struct {
	Name      string           `json:"name"`
	Matches   int              `json:"matches"`
	TotalNano int64            `json:"total_ns"`
	Stages    []stageBenchJSON `json:"stages"`
}

// pipelineBenchJSON is the BENCH_pipeline.json document: the per-stage
// instrumentation of a default-configuration MinoanER run on every
// synthetic benchmark, seeding the performance trajectory.
type pipelineBenchJSON struct {
	Seed     int64              `json:"seed"`
	Scale    float64            `json:"scale"`
	Workers  int                `json:"workers"`
	Env      envJSON            `json:"env"`
	Datasets []datasetBenchJSON `json:"datasets"`
}

func writePipelineBench(path string, datasets []*datagen.Dataset, seed int64, scale float64) error {
	doc := pipelineBenchJSON{Seed: seed, Scale: scale, Workers: runtime.GOMAXPROCS(0), Env: benchEnv()}
	for _, ds := range datasets {
		m, err := core.NewMatcher(ds.KB1, ds.KB2, core.DefaultConfig())
		if err != nil {
			return err
		}
		m.CollectAllocStats(true)
		res := m.Run()
		entry := datasetBenchJSON{Name: ds.Name, Matches: len(res.Matches)}
		for _, s := range res.Stages {
			entry.Stages = append(entry.Stages, stageBenchJSON{
				Stage:      s.Stage,
				Nanos:      s.Duration.Nanoseconds(),
				AllocBytes: s.AllocBytes,
			})
			entry.TotalNano += s.Duration.Nanoseconds()
		}
		doc.Datasets = append(doc.Datasets, entry)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ingestRunJSON is one ingest-to-matches run at a fixed worker count.
type ingestRunJSON struct {
	Workers           int              `json:"workers"`
	TotalNano         int64            `json:"total_ns"`
	IngestNano        int64            `json:"ingest_ns"`
	BuildBlockingNano int64            `json:"build_blocking_ns"`
	Matches           int              `json:"matches"`
	Stages            []stageBenchJSON `json:"stages"`
}

// ingestDatasetJSON profiles one benchmark across worker counts.
type ingestDatasetJSON struct {
	Name     string `json:"name"`
	Triples1 int    `json:"triples1"`
	Triples2 int    `json:"triples2"`
	// SpeedupBuildBlocking is build_blocking_ns at the lowest worker
	// count divided by the same at the highest (bounded by maxprocs on
	// single-core machines); 0 when the sweep has a single count.
	SpeedupBuildBlocking float64         `json:"speedup_build_blocking"`
	Runs                 []ingestRunJSON `json:"runs"`
}

// ingestBenchJSON is the BENCH_ingest.json document: the instrumented
// ingest-to-blocks-to-matches path (N-Triples parsing, KB assembly,
// blocking, matching) of every synthetic benchmark, swept over worker
// counts, with a built-in bit-identity guard across the sweep.
type ingestBenchJSON struct {
	Seed         int64               `json:"seed"`
	Scale        float64             `json:"scale"`
	MaxProcs     int                 `json:"maxprocs"`
	Env          envJSON             `json:"env"`
	WorkerCounts []int               `json:"worker_counts"`
	Datasets     []ingestDatasetJSON `json:"datasets"`
}

// buildBlockingStages are the stages the ingest speedup is measured
// over: KB assembly plus the whole blocking layer.
var buildBlockingStages = map[string]bool{
	pipeline.StageKBBuild:       true,
	pipeline.StageNameBlocking:  true,
	pipeline.StageTokenBlocking: true,
	pipeline.StageBlockPurging:  true,
	pipeline.StageBlockIndexing: true,
}

func writeIngestBench(path string, datasets []*datagen.Dataset, seed int64, scale float64, workerCounts []int) error {
	doc := ingestBenchJSON{Seed: seed, Scale: scale, MaxProcs: runtime.GOMAXPROCS(0), Env: benchEnv(), WorkerCounts: workerCounts}
	for _, ds := range datasets {
		var nt1, nt2 bytes.Buffer
		if err := rdf.WriteAll(&nt1, ds.Triples1); err != nil {
			return err
		}
		if err := rdf.WriteAll(&nt2, ds.Triples2); err != nil {
			return err
		}
		entry := ingestDatasetJSON{Name: ds.Name, Triples1: len(ds.Triples1), Triples2: len(ds.Triples2)}
		var baseline []eval.Pair
		baselineWorkers, haveBaseline := 0, false
		for _, w := range workerCounts {
			cfg := core.DefaultConfig()
			cfg.Workers = w
			res, _, _, err := core.RunSources(context.Background(),
				pipeline.Source{Name: ds.Name + "/KB1", R: bytes.NewReader(nt1.Bytes())},
				pipeline.Source{Name: ds.Name + "/KB2", R: bytes.NewReader(nt2.Bytes())},
				cfg, nil, true)
			if err != nil {
				return err
			}
			if !haveBaseline {
				baseline, baselineWorkers, haveBaseline = res.Matches, w, true
			} else if !samePairs(res.Matches, baseline) {
				return fmt.Errorf("%s: matches diverge between workers=%d and workers=%d",
					ds.Name, baselineWorkers, w)
			}
			run := ingestRunJSON{Workers: w, Matches: len(res.Matches)}
			for _, s := range res.Stages {
				run.Stages = append(run.Stages, stageBenchJSON{
					Stage:      s.Stage,
					Nanos:      s.Duration.Nanoseconds(),
					AllocBytes: s.AllocBytes,
				})
				run.TotalNano += s.Duration.Nanoseconds()
				if s.Stage == pipeline.StageIngest {
					run.IngestNano += s.Duration.Nanoseconds()
				}
				if buildBlockingStages[s.Stage] {
					run.BuildBlockingNano += s.Duration.Nanoseconds()
				}
			}
			entry.Runs = append(entry.Runs, run)
		}
		// Speedup compares the lowest against the highest worker count,
		// wherever they appear in the sweep.
		var base, best ingestRunJSON
		for _, run := range entry.Runs {
			if base.Workers == 0 || run.Workers < base.Workers {
				base = run
			}
			if run.Workers > best.Workers {
				best = run
			}
		}
		if base.BuildBlockingNano > 0 && best.BuildBlockingNano > 0 && base.Workers != best.Workers {
			entry.SpeedupBuildBlocking = float64(base.BuildBlockingNano) / float64(best.BuildBlockingNano)
		}
		doc.Datasets = append(doc.Datasets, entry)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// queryDatasetJSON profiles the query path of one benchmark: index
// build and snapshot round-trip cost, eager-vs-mapped cold start from
// the snapshot file, then the latency of resolving every KB2 entity
// one query at a time against the loaded index.
type queryDatasetJSON struct {
	Name          string `json:"name"`
	Entities1     int    `json:"entities1"`
	Entities2     int    `json:"entities2"`
	Matches       int    `json:"matches"`
	BuildNano     int64  `json:"build_ns"`
	SnapshotBytes int    `json:"snapshot_bytes"`
	SaveNano      int64  `json:"save_ns"`
	// LoadNano and LoadFirstQueryNano are the eager cold start:
	// LoadIndexFile (decode everything) plus the first query. OpenNano
	// and OpenFirstQueryNano are the mapped cold start: OpenIndexFile
	// (map, decode the eager tier only) plus the first query.
	// ColdStartSpeedup is (load+first)/(open+first) — how much sooner a
	// mapped server answers its first query.
	LoadNano           int64   `json:"load_ns"`
	LoadFirstQueryNano int64   `json:"load_first_query_ns"`
	OpenNano           int64   `json:"open_ns"`
	OpenFirstQueryNano int64   `json:"open_first_query_ns"`
	ColdStartSpeedup   float64 `json:"cold_start_speedup"`
	Queries            int     `json:"queries"`
	TotalNano          int64   `json:"total_query_ns"`
	MeanNano           int64   `json:"mean_query_ns"`
	P50Nano            int64   `json:"p50_query_ns"`
	P95Nano            int64   `json:"p95_query_ns"`
	P99Nano            int64   `json:"p99_query_ns"`
	MaxNano            int64   `json:"max_query_ns"`
}

// coldStartReps is how many times each cold start is measured; the
// recorded pair is the rep with the median total.
const coldStartReps = 5

// measureColdStart times open(path) plus the first query, coldStartReps
// times, and returns the median rep's numbers plus one opened index.
// Only the last rep's index is kept alive — holding every rep's decoded
// index would inflate later reps with GC pressure.
func measureColdStart(path, firstURI string, open func(string) (*minoaner.Index, error)) (openNano, firstNano int64, ix *minoaner.Index, err error) {
	type rep struct{ open, first int64 }
	reps := make([]rep, 0, coldStartReps)
	for i := 0; i < coldStartReps; i++ {
		ix = nil
		runtime.GC() // keep the previous rep's garbage out of this one
		t0 := time.Now()
		ix, err = open(path)
		if err != nil {
			return 0, 0, nil, err
		}
		openNano := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		ix.Query(firstURI)
		reps = append(reps, rep{open: openNano, first: time.Since(t0).Nanoseconds()})
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].open+reps[i].first < reps[j].open+reps[j].first })
	r := reps[len(reps)/2]
	return r.open, r.first, ix, nil
}

// smallDelta extracts the triples of the first n KB2 subjects as a
// delta KB — enough to drive the prepared delta path.
func smallDelta(b *minoaner.Benchmark, n int) (*minoaner.KB, error) {
	var nt bytes.Buffer
	if err := b.WriteKB2(&nt); err != nil {
		return nil, err
	}
	subjects := make(map[string]bool, n)
	for i, uri := range b.KB2.URIs() {
		if i >= n {
			break
		}
		tok := "<" + uri + ">"
		if strings.HasPrefix(uri, "_:") {
			tok = uri
		}
		subjects[tok] = true
	}
	var sel []string
	for _, line := range strings.Split(nt.String(), "\n") {
		if i := strings.IndexByte(line, ' '); i > 0 && subjects[line[:i]] {
			sel = append(sel, line)
		}
	}
	return minoaner.LoadKB("delta", strings.NewReader(strings.Join(sel, "\n")+"\n"))
}

// queryBenchJSON is the BENCH_query.json document: the serving-path
// trajectory (index build, snapshot round-trip, per-query latency over
// every KB2 entity) of every synthetic benchmark, with a built-in guard
// that the union of per-entity queries equals the batch match set.
type queryBenchJSON struct {
	Seed     int64              `json:"seed"`
	Scale    float64            `json:"scale"`
	MaxProcs int                `json:"maxprocs"`
	Env      envJSON            `json:"env"`
	Datasets []queryDatasetJSON `json:"datasets"`
}

func writeQueryBench(path string, seed int64, scale float64) error {
	doc := queryBenchJSON{Seed: seed, Scale: scale, MaxProcs: runtime.GOMAXPROCS(0), Env: benchEnv()}
	for _, name := range minoaner.BenchmarkNames() {
		b, err := minoaner.GenerateBenchmark(name, seed, scale)
		if err != nil {
			return err
		}
		cfg := minoaner.DefaultConfig()

		t0 := time.Now()
		built, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
		if err != nil {
			return err
		}
		buildNano := time.Since(t0).Nanoseconds()
		// Freeze the delta substrate into the snapshot (the serve-ready
		// shape), so the mapped cold start is measured against the
		// snapshot a production server would actually open — including
		// the lazily decoded prepared section.
		built.Prepare()

		var snap bytes.Buffer
		t0 = time.Now()
		if err := minoaner.SaveIndex(&snap, built); err != nil {
			return err
		}
		saveNano := time.Since(t0).Nanoseconds()

		// Cold start from a real snapshot file, eager vs mapped: each
		// rep opens the file from scratch and answers one query.
		snapFile, err := os.CreateTemp("", "benchtables-*.msnp")
		if err != nil {
			return err
		}
		snapPath := snapFile.Name()
		defer os.Remove(snapPath)
		if _, err := snapFile.Write(snap.Bytes()); err != nil {
			snapFile.Close()
			return err
		}
		if err := snapFile.Close(); err != nil {
			return err
		}
		firstURI := b.KB2.URIs()[0]
		loadNano, loadFirstNano, ix, err := measureColdStart(snapPath, firstURI, minoaner.LoadIndexFile)
		if err != nil {
			return err
		}
		openNano, openFirstNano, mapped, err := measureColdStart(snapPath, firstURI, minoaner.OpenIndexFile)
		if err != nil {
			return err
		}

		// Bit-identity guards for the mapped path: a small delta through
		// the (lazily decoded) prepared substrate, then the full query
		// sweep below compares every answer against the eager index.
		delta, err := smallDelta(b, 4)
		if err != nil {
			return err
		}
		mappedRes, err := mapped.QueryKB(context.Background(), delta)
		if err != nil {
			return err
		}
		eagerRes, err := ix.QueryKB(context.Background(), delta)
		if err != nil {
			return err
		}
		if !sameMatches(mappedRes.Matches, eagerRes.Matches) {
			return fmt.Errorf("%s: mapped QueryKB diverges from eager (%d vs %d matches)",
				name, len(mappedRes.Matches), len(eagerRes.Matches))
		}

		// Per-query latency over every KB2 entity, plus the equality
		// guard: the union of the answers must be the full match set.
		// The built index's matches stand in for a batch Resolve run
		// (their equality is enforced by index_test.go), so the pipeline
		// is not executed a second time just for the guard.
		batchMatches := built.Matches()
		want := make(map[minoaner.Match]bool, len(batchMatches))
		for _, m := range batchMatches {
			want[m] = true
		}
		got := make(map[minoaner.Match]bool)
		uris := b.KB2.URIs()
		lat := make([]int64, 0, len(uris))
		var total int64
		for _, uri := range uris {
			q0 := time.Now()
			results := ix.Query(uri)
			d := time.Since(q0).Nanoseconds()
			lat = append(lat, d)
			total += d
			if mr := mapped.Query(uri); !reflect.DeepEqual(mr, results) {
				return fmt.Errorf("%s: mapped Query(%q) diverges from eager", name, uri)
			}
			for _, m := range results[0].Matches {
				got[m] = true
			}
		}
		if len(got) != len(want) {
			return fmt.Errorf("%s: query union has %d matches, batch has %d", name, len(got), len(want))
		}
		for m := range got {
			if !want[m] {
				return fmt.Errorf("%s: query union contains %v, batch does not", name, m)
			}
		}

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		entry := queryDatasetJSON{
			Name:               b.Name,
			Entities1:          b.KB1.Len(),
			Entities2:          b.KB2.Len(),
			Matches:            len(batchMatches),
			BuildNano:          buildNano,
			SnapshotBytes:      snap.Len(),
			SaveNano:           saveNano,
			LoadNano:           loadNano,
			LoadFirstQueryNano: loadFirstNano,
			OpenNano:           openNano,
			OpenFirstQueryNano: openFirstNano,
			Queries:            len(lat),
			TotalNano:          total,
		}
		if mappedCold := openNano + openFirstNano; mappedCold > 0 {
			entry.ColdStartSpeedup = float64(loadNano+loadFirstNano) / float64(mappedCold)
		}
		if n := len(lat); n > 0 {
			entry.MeanNano = total / int64(n)
			entry.P50Nano = lat[n/2]
			entry.P95Nano = lat[min(n-1, n*95/100)]
			entry.P99Nano = lat[min(n-1, n*99/100)]
			entry.MaxNano = lat[n-1]
		}
		doc.Datasets = append(doc.Datasets, entry)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// deltaCaseJSON is one measured delta resolution: a delta of the given
// size resolved against the indexed KB1 through the full plan and
// through the prepared substrate, with the built-in guarantee that both
// produced the same matches.
type deltaCaseJSON struct {
	Entities     int     `json:"entities"`
	Triples      int     `json:"triples"`
	Matches      int     `json:"matches"`
	FullNano     int64   `json:"full_plan_ns"`
	PreparedNano int64   `json:"prepared_ns"`
	Speedup      float64 `json:"speedup"`
}

// deltaDatasetJSON profiles the delta path of one benchmark.
type deltaDatasetJSON struct {
	Name      string `json:"name"`
	Entities1 int    `json:"entities1"`
	Entities2 int    `json:"entities2"`
	// PrepareNano is the one-time cost of freezing the KB1 substrate.
	PrepareNano int64 `json:"prepare_ns"`
	// SingleEntity and Batches are the measured delta resolutions.
	SingleEntity []deltaCaseJSON `json:"single_entity"`
	Batches      []deltaCaseJSON `json:"batches"`
	// MinSingleSpeedup is the smallest full/prepared ratio across the
	// single-entity deltas — the conservative headline number.
	MinSingleSpeedup float64 `json:"min_single_speedup"`
	// EquivalenceWorkers lists the worker counts at which the prepared
	// path was verified bit-identical to the full plan on every delta.
	EquivalenceWorkers []int `json:"equivalence_workers"`
}

// deltaBenchJSON is the BENCH_delta.json document: prepared-side vs
// full-plan delta resolution latency over every synthetic benchmark,
// with a built-in bit-identity guard across worker counts.
type deltaBenchJSON struct {
	Seed     int64              `json:"seed"`
	Scale    float64            `json:"scale"`
	MaxProcs int                `json:"maxprocs"`
	Env      envJSON            `json:"env"`
	Datasets []deltaDatasetJSON `json:"datasets"`
}

// deltaPreparedReps is how many times each prepared-path resolution is
// repeated; the recorded latency is the mean.
const deltaPreparedReps = 5

func writeDeltaBench(path string, datasets []*datagen.Dataset, seed int64, scale float64, workerCounts []int) error {
	doc := deltaBenchJSON{Seed: seed, Scale: scale, MaxProcs: runtime.GOMAXPROCS(0), Env: benchEnv()}
	for _, ds := range datasets {
		cfg := core.DefaultConfig()
		entry := deltaDatasetJSON{
			Name:               ds.Name,
			Entities1:          ds.KB1.Len(),
			Entities2:          ds.KB2.Len(),
			EquivalenceWorkers: workerCounts,
		}
		t0 := time.Now()
		prep := pipeline.PrepareSide(ds.KB1, cfg.Params())
		entry.PrepareNano = time.Since(t0).Nanoseconds()

		n2 := ds.KB2.Len()
		uri := func(e int) string { return ds.KB2.URI(kb.EntityID(e)) }
		singles := [][]string{{uri(0)}, {uri(n2 / 2)}, {uri(n2 - 1)}}
		var batches [][]string
		for _, size := range []int{16, 128} {
			if size >= n2 || size >= ds.KB1.Len() {
				continue
			}
			sel := make([]string, 0, size)
			for i := 0; i < size; i++ {
				sel = append(sel, uri(i*n2/size))
			}
			batches = append(batches, sel)
		}

		measure := func(uris []string) (deltaCaseJSON, error) {
			delta, triples, err := kb.FromTriplesSubset("delta", ds.Triples2, uris)
			if err != nil {
				return deltaCaseJSON{}, err
			}
			c := deltaCaseJSON{Entities: delta.Len(), Triples: triples}

			m, err := core.NewMatcher(ds.KB1, delta, cfg)
			if err != nil {
				return c, err
			}
			t0 := time.Now()
			full, err := m.RunContext(context.Background())
			if err != nil {
				return c, err
			}
			c.FullNano = time.Since(t0).Nanoseconds()
			c.Matches = len(full.Matches)

			var preparedTotal int64
			for rep := 0; rep < deltaPreparedReps; rep++ {
				t0 = time.Now()
				fast, err := core.RunDelta(context.Background(), prep, delta, cfg, nil, false)
				if err != nil {
					return c, err
				}
				preparedTotal += time.Since(t0).Nanoseconds()
				if !samePairs(fast.Matches, full.Matches) {
					return c, fmt.Errorf("%s: prepared path diverges from full plan on a %d-entity delta",
						ds.Name, delta.Len())
				}
			}
			c.PreparedNano = preparedTotal / deltaPreparedReps
			if c.PreparedNano > 0 {
				c.Speedup = float64(c.FullNano) / float64(c.PreparedNano)
			}

			// Bit-identity across the worker sweep (the full plan's own
			// worker invariance is guarded by BENCH_ingest.json).
			for _, w := range workerCounts {
				cfgW := cfg
				cfgW.Workers = w
				fast, err := core.RunDelta(context.Background(), prep, delta, cfgW, nil, false)
				if err != nil {
					return c, err
				}
				if !samePairs(fast.Matches, full.Matches) {
					return c, fmt.Errorf("%s: prepared path diverges at workers=%d on a %d-entity delta",
						ds.Name, w, delta.Len())
				}
			}
			return c, nil
		}

		for _, sel := range singles {
			c, err := measure(sel)
			if err != nil {
				return err
			}
			entry.SingleEntity = append(entry.SingleEntity, c)
			if entry.MinSingleSpeedup == 0 || c.Speedup < entry.MinSingleSpeedup {
				entry.MinSingleSpeedup = c.Speedup
			}
		}
		for _, sel := range batches {
			c, err := measure(sel)
			if err != nil {
				return err
			}
			entry.Batches = append(entry.Batches, c)
		}
		doc.Datasets = append(doc.Datasets, entry)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// updateCaseJSON is one measured mutation: an entity-level change
// absorbed through the epoch-update path and, as the baseline, through
// a from-scratch rebuild (KB assembly plus the full plan), with the
// built-in guarantee that both produced the same matches.
type updateCaseJSON struct {
	Op          string  `json:"op"` // "modify", "insert", or "delete"
	Subjects    int     `json:"subjects"`
	Triples     int     `json:"triples"` // delta triples (0 for deletes)
	Matches     int     `json:"matches"`
	UpdateNano  int64   `json:"update_ns"`
	RebuildNano int64   `json:"rebuild_ns"`
	Speedup     float64 `json:"speedup"`
}

// updateDatasetJSON profiles the mutation path of one benchmark.
type updateDatasetJSON struct {
	Name      string `json:"name"`
	Entities1 int    `json:"entities1"`
	Entities2 int    `json:"entities2"`
	// PrimeNano is the one-time cost of the mutable substrate (paid
	// before the first mutation).
	PrimeNano int64 `json:"prime_ns"`
	// Cases are the measured mutations, applied as one chained
	// sequence (each starts from the previous epoch). "modify" edits
	// one literal of an existing description (the common touch-up);
	// "rewrite" swaps a literal for another entity's value, changing
	// the entity's shared-token profile wholesale; "insert" and
	// "delete" add and remove entities.
	Cases []updateCaseJSON `json:"cases"`
	// MinUpsertSpeedup is the smallest rebuild/update ratio across the
	// single-entity "modify" upserts — the headline number.
	// MinRewriteSpeedup is the same across the heavier "rewrite"
	// upserts, whose cost is bounded by the genuinely affected
	// neighborhood rather than the touched entity.
	MinUpsertSpeedup  float64 `json:"min_upsert_speedup"`
	MinRewriteSpeedup float64 `json:"min_rewrite_speedup"`
	// EquivalenceWorkers lists the worker counts at which the update
	// path was verified bit-identical to the full plan on every case.
	EquivalenceWorkers []int `json:"equivalence_workers"`
}

// updateBenchJSON is the BENCH_update.json document: per-mutation
// epoch-update latency vs full rebuild over every synthetic benchmark,
// with a built-in rebuild-equivalence guard across worker counts.
type updateBenchJSON struct {
	Seed     int64               `json:"seed"`
	Scale    float64             `json:"scale"`
	MaxProcs int                 `json:"maxprocs"`
	Env      envJSON             `json:"env"`
	Datasets []updateDatasetJSON `json:"datasets"`
}

func writeUpdateBench(path string, datasets []*datagen.Dataset, seed int64, scale float64, workerCounts []int) error {
	ctx := context.Background()
	doc := updateBenchJSON{Seed: seed, Scale: scale, MaxProcs: runtime.GOMAXPROCS(0), Env: benchEnv()}
	for _, ds := range datasets {
		cfg := core.DefaultConfig()
		entry := updateDatasetJSON{
			Name:               ds.Name,
			Entities1:          ds.KB1.Len(),
			Entities2:          ds.KB2.Len(),
			EquivalenceWorkers: workerCounts,
		}

		// Resolve the pair once and prime the mutable substrate.
		st := pipeline.NewState(ds.KB1, ds.KB2, cfg.Params())
		eng := pipeline.Engine{Plan: core.PlanFor(cfg)}
		if _, err := eng.Run(ctx, st); err != nil {
			return err
		}
		t0 := time.Now()
		cache, err := pipeline.NewCache(ctx, st, st.NameBlocks, st.PurgeStats)
		if err != nil {
			return err
		}
		entry.PrimeNano = time.Since(t0).Nanoseconds()

		store, err := kb.NewStore(ds.KB2)
		if err != nil {
			return err
		}
		cur := ds.KB2
		refTriples := append([]rdf.Triple(nil), ds.Triples2...)

		measure := func(op string, delta []rdf.Triple, deletes []string) error {
			var deltaKB *kb.KB
			if len(delta) > 0 {
				deltaKB, err = kb.FromTriples("delta", delta)
				if err != nil {
					return err
				}
			}

			// The epoch-update path: apply at triple level, assemble the
			// KB epoch, absorb it into the match state. Single-shot
			// numbers at these latencies are GC-noisy, so the whole
			// mutation is timed as the median of a few runs, reverted
			// between repetitions (the last one commits).
			var next *kb.KB
			var upd *core.Result
			var nextCache *pipeline.Cache
			var times []int64
			const reps = 5
			runtime.GC() // keep earlier cases' garbage out of this measurement
			for rep := 0; rep < reps; rep++ {
				t0 := time.Now()
				changed, revert, err := store.Apply(deltaKB, deletes)
				if err != nil {
					return err
				}
				if !changed {
					return fmt.Errorf("%s: %s mutation was a no-op", ds.Name, op)
				}
				next = store.Assemble(cur)
				upd, nextCache, err = core.RunUpdate(ctx, cache, ds.KB1, cur, ds.KB1, next, cfg, nil, false)
				if err != nil {
					return err
				}
				times = append(times, time.Since(t0).Nanoseconds())
				if rep < reps-1 {
					revert()
				}
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			updateNano := times[len(times)/2]

			// The baseline: what a build-once system pays for the same
			// change — reassemble KB2 from the mutated triples and rerun
			// the full plan.
			refTriples = applyRefMutation(refTriples, delta, deletes)
			runtime.GC()
			var full *core.Result
			rebuildNano, err := medianNano(func() error {
				rebuilt, err := kb.FromTriples(ds.KB2.Name(), refTriples)
				if err != nil {
					return err
				}
				m, err := core.NewMatcher(ds.KB1, rebuilt, cfg)
				if err != nil {
					return err
				}
				full, err = m.RunContext(ctx)
				return err
			})
			if err != nil {
				return err
			}

			// Rebuild-equivalence guard, here and across the worker
			// sweep.
			if !samePairs(upd.Matches, full.Matches) {
				return fmt.Errorf("%s: %s mutation diverges from the full rebuild", ds.Name, op)
			}
			for _, w := range workerCounts {
				cfgW := cfg
				cfgW.Workers = w
				updW, _, err := core.RunUpdate(ctx, cache, ds.KB1, cur, ds.KB1, next, cfgW, nil, false)
				if err != nil {
					return err
				}
				if !samePairs(updW.Matches, full.Matches) {
					return fmt.Errorf("%s: %s mutation diverges at workers=%d", ds.Name, op, w)
				}
			}

			c := updateCaseJSON{
				Op:          op,
				Subjects:    len(deletes),
				Matches:     len(upd.Matches),
				UpdateNano:  updateNano,
				RebuildNano: rebuildNano,
			}
			if deltaKB != nil {
				c.Subjects = deltaKB.Len()
				c.Triples = deltaKB.NumTriples()
			}
			if updateNano > 0 {
				c.Speedup = float64(rebuildNano) / float64(updateNano)
			}
			entry.Cases = append(entry.Cases, c)
			if op == "modify" && (entry.MinUpsertSpeedup == 0 || c.Speedup < entry.MinUpsertSpeedup) {
				entry.MinUpsertSpeedup = c.Speedup
			}
			if op == "rewrite" && (entry.MinRewriteSpeedup == 0 || c.Speedup < entry.MinRewriteSpeedup) {
				entry.MinRewriteSpeedup = c.Speedup
			}
			cur, cache = next, nextCache
			return nil
		}

		n2 := cur.Len()
		subjectTriples := func(uri string) []rdf.Triple {
			var out []rdf.Triple
			for _, tr := range refTriples {
				if kb.SubjectKey(tr.Subject) == uri {
					out = append(out, tr)
				}
			}
			return out
		}
		// Three single-entity modifications spread over KB2 — the
		// common touch-up: one literal of the description gains a
		// word, everything else stays.
		for i, e := range []int{0, n2 / 2, n2 - 1} {
			uri := cur.URI(kb.EntityID(e))
			delta := subjectTriples(uri)
			for j, tr := range delta {
				if tr.Object.IsLiteral() {
					delta[j].Object = rdf.NewLiteral(tr.Object.Value + fmt.Sprintf(" corrected%d", i))
					break
				}
			}
			if err := measure("modify", delta, nil); err != nil {
				return err
			}
		}
		// Two single-entity rewrites: a literal swapped for another
		// entity's value, changing the entity's shared-token profile —
		// the expensive end of the upsert spectrum.
		for _, e := range []int{n2 / 3, 2 * n2 / 3} {
			uri := cur.URI(kb.EntityID(e))
			donor := subjectTriples(cur.URI(kb.EntityID((e + n2/2) % n2)))
			delta := subjectTriples(uri)
			for j, tr := range delta {
				if !tr.Object.IsLiteral() {
					continue
				}
				for _, dt := range donor {
					if dt.Object.IsLiteral() {
						delta[j].Object = dt.Object
						break
					}
				}
				break
			}
			if err := measure("rewrite", delta, nil); err != nil {
				return err
			}
		}
		// One brand-new entity and one deletion.
		newSubj := rdf.NewIRI("http://bench/new-entity")
		if err := measure("insert", []rdf.Triple{
			rdf.NewTriple(newSubj, rdf.NewIRI("http://bench/name"), rdf.NewLiteral("benchmark insert entity")),
			rdf.NewTriple(newSubj, rdf.NewIRI("http://bench/link"), rdf.NewIRI(cur.URI(kb.EntityID(n2/3)))),
		}, nil); err != nil {
			return err
		}
		if err := measure("delete", nil, []string{cur.URI(kb.EntityID(n2 / 4))}); err != nil {
			return err
		}

		doc.Datasets = append(doc.Datasets, entry)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// shardLatencyJSON is one shard count's measured cost for a case.
type shardLatencyJSON struct {
	Shards int   `json:"shards"`
	Nanos  int64 `json:"ns"`
	// SpeedupVs1 is the single-substrate latency divided by this shard
	// count's (0 when the sweep does not include shards=1).
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// shardDeltaCaseJSON is one delta resolved through the scatter-gather
// path at every shard count, with the built-in guarantee that all of
// them produced the single-substrate match list.
type shardDeltaCaseJSON struct {
	Entities int                `json:"entities"`
	Triples  int                `json:"triples"`
	Matches  int                `json:"matches"`
	ByShards []shardLatencyJSON `json:"by_shards"`
}

// shardDatasetJSON profiles the sharded index of one benchmark.
type shardDatasetJSON struct {
	Name      string `json:"name"`
	Entities1 int    `json:"entities1"`
	Entities2 int    `json:"entities2"`
	// Split is the one-time cost of partitioning the prepared substrate
	// into each shard count.
	Split []shardLatencyJSON `json:"split"`
	// SingleEntity and Batches are per-delta scatter-gather latencies.
	SingleEntity []shardDeltaCaseJSON `json:"single_entity"`
	Batches      []shardDeltaCaseJSON `json:"batches"`
	// Mutation is a side-1 modify absorbed with the per-shard
	// sub-substrates attached (patch split + owner-shard apply
	// included), per shard count.
	Mutation []shardLatencyJSON `json:"mutation"`
	// EquivalenceWorkers lists the worker counts at which every shard
	// count was verified bit-identical to the single substrate.
	EquivalenceWorkers []int `json:"equivalence_workers"`
}

// shardBenchJSON is the BENCH_shard.json document: scatter-gather delta
// resolution and owner-routed mutation latency as a function of shard
// count, with built-in bit-identity guards at every combination of
// shard count and worker count (query path, mutation path, and
// post-mutation state).
type shardBenchJSON struct {
	Seed        int64              `json:"seed"`
	Scale       float64            `json:"scale"`
	ShardCounts []int              `json:"shard_counts"`
	Env         envJSON            `json:"env"`
	Datasets    []shardDatasetJSON `json:"datasets"`
}

// shardReps is how many times each sharded measurement repeats; the
// recorded latency is the mean for deltas and the median for mutations.
const shardReps = 5

// fillSpeedupVs1 derives SpeedupVs1 against the shards=1 entry.
func fillSpeedupVs1(ls []shardLatencyJSON) {
	var base int64
	for _, l := range ls {
		if l.Shards == 1 {
			base = l.Nanos
		}
	}
	if base == 0 {
		return
	}
	for i := range ls {
		if ls[i].Nanos > 0 {
			ls[i].SpeedupVs1 = float64(base) / float64(ls[i].Nanos)
		}
	}
}

func writeShardBench(path string, datasets []*datagen.Dataset, seed int64, scale float64, shardCounts, workerCounts []int) error {
	ctx := context.Background()
	doc := shardBenchJSON{Seed: seed, Scale: scale, ShardCounts: shardCounts, Env: benchEnv()}
	for _, ds := range datasets {
		cfg := core.DefaultConfig()
		entry := shardDatasetJSON{
			Name:               ds.Name,
			Entities1:          ds.KB1.Len(),
			Entities2:          ds.KB2.Len(),
			EquivalenceWorkers: workerCounts,
		}
		prep := pipeline.PrepareSide(ds.KB1, cfg.Params())

		// Partition once per shard count, timing the split.
		subs := make(map[int]*pipeline.ShardedPrepared, len(shardCounts))
		for _, k := range shardCounts {
			t0 := time.Now()
			sp, err := pipeline.ShardSide(prep, k)
			if err != nil {
				return err
			}
			entry.Split = append(entry.Split, shardLatencyJSON{Shards: k, Nanos: time.Since(t0).Nanoseconds()})
			subs[k] = sp
		}

		n2 := ds.KB2.Len()
		uri := func(e int) string { return ds.KB2.URI(kb.EntityID(e)) }
		singles := [][]string{{uri(0)}, {uri(n2 / 2)}, {uri(n2 - 1)}}
		var batches [][]string
		for _, size := range []int{16, 128} {
			if size >= n2 || size >= ds.KB1.Len() {
				continue
			}
			sel := make([]string, 0, size)
			for i := 0; i < size; i++ {
				sel = append(sel, uri(i*n2/size))
			}
			batches = append(batches, sel)
		}

		measure := func(uris []string) (shardDeltaCaseJSON, error) {
			delta, triples, err := kb.FromTriplesSubset("delta", ds.Triples2, uris)
			if err != nil {
				return shardDeltaCaseJSON{}, err
			}
			c := shardDeltaCaseJSON{Entities: delta.Len(), Triples: triples}
			ref, err := core.RunDelta(ctx, prep, delta, cfg, nil, false)
			if err != nil {
				return c, err
			}
			c.Matches = len(ref.Matches)
			for _, k := range shardCounts {
				var total int64
				for rep := 0; rep < shardReps; rep++ {
					t0 := time.Now()
					res, err := core.RunSharded(ctx, subs[k], delta, cfg, nil, false)
					if err != nil {
						return c, err
					}
					total += time.Since(t0).Nanoseconds()
					if !samePairs(res.Matches, ref.Matches) {
						return c, fmt.Errorf("%s: sharded path diverges at shards=%d on a %d-entity delta",
							ds.Name, k, delta.Len())
					}
				}
				// Bit-identity across the worker sweep at this shard count.
				for _, w := range workerCounts {
					cfgW := cfg
					cfgW.Workers = w
					res, err := core.RunSharded(ctx, subs[k], delta, cfgW, nil, false)
					if err != nil {
						return c, err
					}
					if !samePairs(res.Matches, ref.Matches) {
						return c, fmt.Errorf("%s: sharded path diverges at shards=%d workers=%d on a %d-entity delta",
							ds.Name, k, w, delta.Len())
					}
				}
				c.ByShards = append(c.ByShards, shardLatencyJSON{Shards: k, Nanos: total / shardReps})
			}
			fillSpeedupVs1(c.ByShards)
			return c, nil
		}

		for _, sel := range singles {
			c, err := measure(sel)
			if err != nil {
				return err
			}
			entry.SingleEntity = append(entry.SingleEntity, c)
		}
		for _, sel := range batches {
			c, err := measure(sel)
			if err != nil {
				return err
			}
			entry.Batches = append(entry.Batches, c)
		}

		// Mutation latency vs shard count: the same side-1 modify (one
		// KB1 description gains a literal) absorbed from the same base
		// epoch, with the per-shard sub-substrates attached so the patch
		// splits by owner and applies per shard.
		st := pipeline.NewState(ds.KB1, ds.KB2, cfg.Params())
		eng := pipeline.Engine{Plan: core.PlanFor(cfg)}
		if _, err := eng.Run(ctx, st); err != nil {
			return err
		}
		baseCache, err := pipeline.NewCache(ctx, st, st.NameBlocks, st.PurgeStats)
		if err != nil {
			return err
		}
		uri1 := ds.KB1.URI(kb.EntityID(ds.KB1.Len() / 2))
		var delta1 []rdf.Triple
		for _, tr := range ds.Triples1 {
			if kb.SubjectKey(tr.Subject) == uri1 {
				delta1 = append(delta1, tr)
			}
		}
		perturbed := false
		for j, tr := range delta1 {
			if tr.Object.IsLiteral() {
				delta1[j].Object = rdf.NewLiteral(tr.Object.Value + " shard bench perturb")
				perturbed = true
				break
			}
		}
		if !perturbed {
			delta1 = append(delta1, rdf.NewTriple(rdf.NewIRI(uri1),
				rdf.NewIRI("http://bench/extra"), rdf.NewLiteral("shard bench perturb")))
		}
		deltaKB1, err := kb.FromTriples("delta1", delta1)
		if err != nil {
			return err
		}
		store1, err := kb.NewStore(ds.KB1)
		if err != nil {
			return err
		}
		qdelta, _, err := kb.FromTriplesSubset("postmut", ds.Triples2, []string{uri(0)})
		if err != nil {
			return err
		}
		var refMatches []eval.Pair
		for _, k := range shardCounts {
			cache := *baseCache
			if k > 1 {
				cache.ShardOwners = pipeline.ShardOwners(ds.KB1, k)
				cache.ShardSubs = cache.Prep1.SplitByOwner(cache.ShardOwners, k)
			} else {
				cache.ShardOwners, cache.ShardSubs = nil, nil
			}
			var times []int64
			var matches []eval.Pair
			var nextCache *pipeline.Cache
			var new1 *kb.KB
			runtime.GC()
			for rep := 0; rep < shardReps; rep++ {
				t0 := time.Now()
				changed, revert, err := store1.Apply(deltaKB1, nil)
				if err != nil {
					return err
				}
				if !changed {
					return fmt.Errorf("%s: shard mutation was a no-op", ds.Name)
				}
				new1 = store1.Assemble(ds.KB1)
				upd, nc, err := core.RunUpdate(ctx, &cache, ds.KB1, ds.KB2, new1, ds.KB2, cfg, nil, false)
				if err != nil {
					return err
				}
				times = append(times, time.Since(t0).Nanoseconds())
				matches, nextCache = upd.Matches, nc
				revert() // every shard count absorbs the mutation from the same base
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			if refMatches == nil {
				refMatches = matches
			} else if !samePairs(matches, refMatches) {
				return fmt.Errorf("%s: mutation result diverges at shards=%d", ds.Name, k)
			}
			if k > 1 {
				// Post-mutation bit-identity: the owner-patched sub-substrates
				// answer exactly like the patched unsplit substrate.
				if len(nextCache.ShardSubs) != k {
					return fmt.Errorf("%s: mutation at shards=%d left %d sub-substrates",
						ds.Name, k, len(nextCache.ShardSubs))
				}
				base := &pipeline.Prepared{
					Blocks:    nextCache.Prep1,
					Neighbors: kb.FrozenFromLists(new1, cfg.Params().N, nextCache.Top1),
				}
				sp, err := pipeline.ShardedFromParts(base, nextCache.ShardSubs, nextCache.ShardOwners)
				if err != nil {
					return err
				}
				want, err := core.RunDelta(ctx, base, qdelta, cfg, nil, false)
				if err != nil {
					return err
				}
				got, err := core.RunSharded(ctx, sp, qdelta, cfg, nil, false)
				if err != nil {
					return err
				}
				if !samePairs(got.Matches, want.Matches) {
					return fmt.Errorf("%s: post-mutation sharded state diverges at shards=%d", ds.Name, k)
				}
			}
			entry.Mutation = append(entry.Mutation, shardLatencyJSON{Shards: k, Nanos: times[len(times)/2]})
		}
		fillSpeedupVs1(entry.Mutation)

		doc.Datasets = append(doc.Datasets, entry)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// medianNano runs fn updateBenchReps times and returns the median
// wall-clock time.
func medianNano(fn func() error) (int64, error) {
	const reps = 3
	times := make([]int64, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(t0).Nanoseconds())
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// applyRefMutation mirrors Store.Apply on a reference triple list.
func applyRefMutation(ts, delta []rdf.Triple, deletes []string) []rdf.Triple {
	drop := make(map[string]bool)
	for _, tr := range delta {
		drop[kb.SubjectKey(tr.Subject)] = true
	}
	for _, u := range deletes {
		drop[u] = true
	}
	out := ts[:0:0]
	for _, tr := range ts {
		if !drop[kb.SubjectKey(tr.Subject)] {
			out = append(out, tr)
		}
	}
	return append(out, delta...)
}

// sameMatches compares public match slices treating nil and empty as
// equal.
func sameMatches(a, b []minoaner.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// samePairs compares match slices treating nil and empty as equal.
func samePairs(a, b []eval.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseWorkerCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid worker count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts in %q", s)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	var (
		table         = flag.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
		ablations     = flag.Bool("ablations", false, "run the MinoanER ablation study instead of the paper tables")
		blockingStudy = flag.Bool("blocking-study", false, "compare blocking strategies (purging vs meta-blocking) instead of the paper tables")
		seed          = flag.Int64("seed", 42, "dataset generator seed")
		scale         = flag.Float64("scale", 1.0, "dataset size multiplier")
		methods       = flag.String("methods", "", "comma-separated subset of methods for table 3 (default: all)")
		timing        = flag.Bool("timing", true, "print per-step wall-clock timings to stderr")
		jsonPath      = flag.String("json", "", "write per-stage MinoanER pipeline timings to this JSON file (e.g. BENCH_pipeline.json) instead of the paper tables")
		ingestPath    = flag.String("ingest-json", "", "write the instrumented ingest-to-matches profile (N-Triples parsing, KB build, blocking, matching) to this JSON file (e.g. BENCH_ingest.json) instead of the paper tables")
		ingestWorkers = flag.String("ingest-workers", "1,2,4,8", "comma-separated worker counts swept by -ingest-json")
		queryPath     = flag.String("query-json", "", "write the query-path profile (index build, snapshot save/load, per-query latency over every KB2 entity) to this JSON file (e.g. BENCH_query.json) instead of the paper tables")
		deltaPath     = flag.String("delta-json", "", "write the delta-resolution profile (prepared substrate vs full plan, single entities and batches, with a bit-identity guard) to this JSON file (e.g. BENCH_delta.json) instead of the paper tables")
		deltaWorkers  = flag.String("delta-workers", "1,2,4,8", "comma-separated worker counts at which -delta-json verifies prepared/full bit-identity")
		updatePath    = flag.String("update-json", "", "write the mutation profile (per-upsert/delete epoch-update latency vs full rebuild, with a rebuild-equivalence guard) to this JSON file (e.g. BENCH_update.json) instead of the paper tables")
		updateWorkers = flag.String("update-workers", "1,2,4,8", "comma-separated worker counts at which -update-json verifies update/rebuild bit-identity")
		shardPath     = flag.String("shard-json", "", "write the sharded-index profile (scatter-gather delta resolution and owner-routed mutations vs shard count, with a bit-identity guard) to this JSON file (e.g. BENCH_shard.json) instead of the paper tables")
		shardCounts   = flag.String("shard-counts", "1,2,4,8", "comma-separated shard counts swept by -shard-json")
		shardWorkers  = flag.String("shard-workers", "1,4", "comma-separated worker counts at which -shard-json verifies sharded/unsharded bit-identity")
		streamPath    = flag.String("stream-json", "", "write the anytime-resolution profile (time-to-first-match, recall-vs-budget curves and AUC per scheduling strategy, with a bit-identity guard) to this JSON file (e.g. BENCH_stream.json) instead of the paper tables")
	)
	flag.Parse()

	if *queryPath != "" {
		t0 := time.Now()
		if err := writeQueryBench(*queryPath, *seed, *scale); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "query bench in %v (written to %s)\n",
				time.Since(t0).Round(time.Millisecond), *queryPath)
		}
		return
	}

	start := time.Now()
	datasets, err := experiments.Datasets(datagen.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "datasets generated in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if *jsonPath != "" {
		t0 := time.Now()
		if err := writePipelineBench(*jsonPath, datasets, *seed, *scale); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "pipeline bench in %v (written to %s)\n",
				time.Since(t0).Round(time.Millisecond), *jsonPath)
		}
		return
	}
	if *streamPath != "" {
		t0 := time.Now()
		if err := writeStreamBench(*streamPath, datasets, *seed, *scale); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "stream bench in %v (written to %s)\n",
				time.Since(t0).Round(time.Millisecond), *streamPath)
		}
		return
	}
	if *deltaPath != "" {
		counts, err := parseWorkerCounts(*deltaWorkers)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := writeDeltaBench(*deltaPath, datasets, *seed, *scale, counts); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "delta bench in %v (written to %s)\n",
				time.Since(t0).Round(time.Millisecond), *deltaPath)
		}
		return
	}
	if *updatePath != "" {
		counts, err := parseWorkerCounts(*updateWorkers)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := writeUpdateBench(*updatePath, datasets, *seed, *scale, counts); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "update bench in %v (written to %s)\n",
				time.Since(t0).Round(time.Millisecond), *updatePath)
		}
		return
	}
	if *shardPath != "" {
		counts, err := parseWorkerCounts(*shardCounts)
		if err != nil {
			log.Fatal(err)
		}
		workers, err := parseWorkerCounts(*shardWorkers)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := writeShardBench(*shardPath, datasets, *seed, *scale, counts, workers); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "shard bench in %v (written to %s)\n",
				time.Since(t0).Round(time.Millisecond), *shardPath)
		}
		return
	}
	if *ingestPath != "" {
		counts, err := parseWorkerCounts(*ingestWorkers)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := writeIngestBench(*ingestPath, datasets, *seed, *scale, counts); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "ingest bench in %v (written to %s)\n",
				time.Since(t0).Round(time.Millisecond), *ingestPath)
		}
		return
	}
	if *ablations {
		t0 := time.Now()
		if err := experiments.AblationTable(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "ablations in %v\n", time.Since(t0).Round(time.Millisecond))
		}
		return
	}
	if *blockingStudy {
		t0 := time.Now()
		if err := experiments.BlockingStrategyTable(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "blocking study in %v\n", time.Since(t0).Round(time.Millisecond))
		}
		return
	}

	want := func(n string) bool { return *table == "all" || *table == n }
	if want("1") {
		if err := experiments.TableI(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if want("2") {
		t0 := time.Now()
		if err := experiments.TableII(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if *timing {
			fmt.Fprintf(os.Stderr, "table II in %v\n", time.Since(t0).Round(time.Millisecond))
		}
	}
	if want("3") {
		selected := experiments.Methods()
		if *methods != "" {
			keep := map[string]bool{}
			for _, m := range strings.Split(*methods, ",") {
				keep[strings.TrimSpace(m)] = true
			}
			var filtered []experiments.Method
			for _, m := range selected {
				if keep[m.Name] {
					filtered = append(filtered, m)
				}
			}
			if len(filtered) == 0 {
				log.Fatalf("no methods matched %q", *methods)
			}
			selected = filtered
		}
		t0 := time.Now()
		results := experiments.RunMethods(datasets, selected)
		if err := experiments.TableIII(datasets, results).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "table III in %v\n", time.Since(t0).Round(time.Millisecond))
		}
	}
}
