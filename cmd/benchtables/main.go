// Command benchtables regenerates the paper's evaluation artifacts over
// the synthetic benchmark stand-ins:
//
//	benchtables -table 1          # Table I  (dataset statistics)
//	benchtables -table 2          # Table II (block statistics)
//	benchtables -table 3          # Table III (method comparison)
//	benchtables -table all        # everything
//	benchtables -ablations        # MinoanER ablation study
//	benchtables -json BENCH_pipeline.json   # per-stage pipeline timings
//
// Absolute numbers differ from the paper (the substrates are synthetic
// stand-ins; see DESIGN.md §2); the comparative shapes are the
// reproduction target and are recorded in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/experiments"
)

// stageBenchJSON is one stage's cost within a dataset's pipeline run.
type stageBenchJSON struct {
	Stage      string `json:"stage"`
	Nanos      int64  `json:"ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// datasetBenchJSON is the per-stage timing profile of one benchmark.
type datasetBenchJSON struct {
	Name      string           `json:"name"`
	Matches   int              `json:"matches"`
	TotalNano int64            `json:"total_ns"`
	Stages    []stageBenchJSON `json:"stages"`
}

// pipelineBenchJSON is the BENCH_pipeline.json document: the per-stage
// instrumentation of a default-configuration MinoanER run on every
// synthetic benchmark, seeding the performance trajectory.
type pipelineBenchJSON struct {
	Seed     int64              `json:"seed"`
	Scale    float64            `json:"scale"`
	Workers  int                `json:"workers"`
	Datasets []datasetBenchJSON `json:"datasets"`
}

func writePipelineBench(path string, datasets []*datagen.Dataset, seed int64, scale float64) error {
	doc := pipelineBenchJSON{Seed: seed, Scale: scale, Workers: runtime.GOMAXPROCS(0)}
	for _, ds := range datasets {
		m, err := core.NewMatcher(ds.KB1, ds.KB2, core.DefaultConfig())
		if err != nil {
			return err
		}
		m.CollectAllocStats(true)
		res := m.Run()
		entry := datasetBenchJSON{Name: ds.Name, Matches: len(res.Matches)}
		for _, s := range res.Stages {
			entry.Stages = append(entry.Stages, stageBenchJSON{
				Stage:      s.Stage,
				Nanos:      s.Duration.Nanoseconds(),
				AllocBytes: s.AllocBytes,
			})
			entry.TotalNano += s.Duration.Nanoseconds()
		}
		doc.Datasets = append(doc.Datasets, entry)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	var (
		table         = flag.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
		ablations     = flag.Bool("ablations", false, "run the MinoanER ablation study instead of the paper tables")
		blockingStudy = flag.Bool("blocking-study", false, "compare blocking strategies (purging vs meta-blocking) instead of the paper tables")
		seed          = flag.Int64("seed", 42, "dataset generator seed")
		scale         = flag.Float64("scale", 1.0, "dataset size multiplier")
		methods       = flag.String("methods", "", "comma-separated subset of methods for table 3 (default: all)")
		timing        = flag.Bool("timing", true, "print per-step wall-clock timings to stderr")
		jsonPath      = flag.String("json", "", "write per-stage MinoanER pipeline timings to this JSON file (e.g. BENCH_pipeline.json) instead of the paper tables")
	)
	flag.Parse()

	start := time.Now()
	datasets, err := experiments.Datasets(datagen.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "datasets generated in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if *jsonPath != "" {
		t0 := time.Now()
		if err := writePipelineBench(*jsonPath, datasets, *seed, *scale); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "pipeline bench in %v (written to %s)\n",
				time.Since(t0).Round(time.Millisecond), *jsonPath)
		}
		return
	}
	if *ablations {
		t0 := time.Now()
		if err := experiments.AblationTable(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "ablations in %v\n", time.Since(t0).Round(time.Millisecond))
		}
		return
	}
	if *blockingStudy {
		t0 := time.Now()
		if err := experiments.BlockingStrategyTable(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "blocking study in %v\n", time.Since(t0).Round(time.Millisecond))
		}
		return
	}

	want := func(n string) bool { return *table == "all" || *table == n }
	if want("1") {
		if err := experiments.TableI(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if want("2") {
		t0 := time.Now()
		if err := experiments.TableII(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if *timing {
			fmt.Fprintf(os.Stderr, "table II in %v\n", time.Since(t0).Round(time.Millisecond))
		}
	}
	if want("3") {
		selected := experiments.Methods()
		if *methods != "" {
			keep := map[string]bool{}
			for _, m := range strings.Split(*methods, ",") {
				keep[strings.TrimSpace(m)] = true
			}
			var filtered []experiments.Method
			for _, m := range selected {
				if keep[m.Name] {
					filtered = append(filtered, m)
				}
			}
			if len(filtered) == 0 {
				log.Fatalf("no methods matched %q", *methods)
			}
			selected = filtered
		}
		t0 := time.Now()
		results := experiments.RunMethods(datasets, selected)
		if err := experiments.TableIII(datasets, results).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "table III in %v\n", time.Since(t0).Round(time.Millisecond))
		}
	}
}
