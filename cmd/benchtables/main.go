// Command benchtables regenerates the paper's evaluation artifacts over
// the synthetic benchmark stand-ins:
//
//	benchtables -table 1          # Table I  (dataset statistics)
//	benchtables -table 2          # Table II (block statistics)
//	benchtables -table 3          # Table III (method comparison)
//	benchtables -table all        # everything
//	benchtables -ablations        # MinoanER ablation study
//
// Absolute numbers differ from the paper (the substrates are synthetic
// stand-ins; see DESIGN.md §2); the comparative shapes are the
// reproduction target and are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"minoaner/internal/datagen"
	"minoaner/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	var (
		table         = flag.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
		ablations     = flag.Bool("ablations", false, "run the MinoanER ablation study instead of the paper tables")
		blockingStudy = flag.Bool("blocking-study", false, "compare blocking strategies (purging vs meta-blocking) instead of the paper tables")
		seed          = flag.Int64("seed", 42, "dataset generator seed")
		scale         = flag.Float64("scale", 1.0, "dataset size multiplier")
		methods       = flag.String("methods", "", "comma-separated subset of methods for table 3 (default: all)")
		timing        = flag.Bool("timing", true, "print per-step wall-clock timings to stderr")
	)
	flag.Parse()

	start := time.Now()
	datasets, err := experiments.Datasets(datagen.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "datasets generated in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if *ablations {
		t0 := time.Now()
		if err := experiments.AblationTable(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "ablations in %v\n", time.Since(t0).Round(time.Millisecond))
		}
		return
	}
	if *blockingStudy {
		t0 := time.Now()
		if err := experiments.BlockingStrategyTable(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "blocking study in %v\n", time.Since(t0).Round(time.Millisecond))
		}
		return
	}

	want := func(n string) bool { return *table == "all" || *table == n }
	if want("1") {
		if err := experiments.TableI(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if want("2") {
		t0 := time.Now()
		if err := experiments.TableII(datasets).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if *timing {
			fmt.Fprintf(os.Stderr, "table II in %v\n", time.Since(t0).Round(time.Millisecond))
		}
	}
	if want("3") {
		selected := experiments.Methods()
		if *methods != "" {
			keep := map[string]bool{}
			for _, m := range strings.Split(*methods, ",") {
				keep[strings.TrimSpace(m)] = true
			}
			var filtered []experiments.Method
			for _, m := range selected {
				if keep[m.Name] {
					filtered = append(filtered, m)
				}
			}
			if len(filtered) == 0 {
				log.Fatalf("no methods matched %q", *methods)
			}
			selected = filtered
		}
		t0 := time.Now()
		results := experiments.RunMethods(datasets, selected)
		if err := experiments.TableIII(datasets, results).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *timing {
			fmt.Fprintf(os.Stderr, "table III in %v\n", time.Since(t0).Round(time.Millisecond))
		}
	}
}
