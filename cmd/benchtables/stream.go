package main

// The -stream-json profile: anytime (streaming) resolution versus the
// batch pipeline. For every benchmark and both pair schedulers it
// records the time to the first confirmed match, the full drain time,
// the progressive recall curve over pair budgets, and its AUC — with a
// built-in bit-identity guard proving the drained stream is exactly
// the batch match set.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"minoaner"
	"minoaner/internal/core"
	"minoaner/internal/datagen"
	"minoaner/internal/eval"
	"minoaner/internal/pipeline"
	"minoaner/internal/progressive"
)

// streamBudgetPointJSON is one point of the recall-vs-budget curve.
type streamBudgetPointJSON struct {
	// Pairs is the budget: the stream is cut after this many matches.
	Pairs int `json:"pairs"`
	// Recall is the ground-truth recall of the budgeted prefix.
	Recall float64 `json:"recall"`
}

// streamStrategyBenchJSON profiles one pair scheduler on one benchmark.
type streamStrategyBenchJSON struct {
	Strategy string `json:"strategy"`
	// FirstMatchNano is the median latency from calling ResolveStream
	// to receiving the first confirmed pair on the channel.
	FirstMatchNano int64 `json:"ttfm_ns"`
	// DrainNano is the median wall-clock of draining the whole stream.
	DrainNano int64 `json:"drain_ns"`
	Pairs     int   `json:"pairs"`
	// TTFMSpeedupVsResolve is resolve_ns / ttfm_ns — how much sooner
	// the first match surfaces compared to waiting for the batch run.
	TTFMSpeedupVsResolve float64 `json:"ttfm_speedup_vs_resolve"`
	// AUC is the normalized area under the progressive recall curve of
	// the emission order (1 = every match instantly).
	AUC            float64                 `json:"auc"`
	RecallAtBudget []streamBudgetPointJSON `json:"recall_at_budget"`
}

// streamDatasetBenchJSON profiles one benchmark.
type streamDatasetBenchJSON struct {
	Name string `json:"name"`
	// Matches is the batch match count; every drained stream below is
	// verified bit-identical to it.
	Matches     int   `json:"matches"`
	GroundTruth int   `json:"ground_truth"`
	ResolveNano int64 `json:"resolve_ns"`
	// BatchRecall is the recall of the full match set — the plateau the
	// recall-vs-budget curves converge to.
	BatchRecall float64                   `json:"batch_recall"`
	Strategies  []streamStrategyBenchJSON `json:"strategies"`
}

// streamBenchJSON is the BENCH_stream.json document.
type streamBenchJSON struct {
	Seed     int64                    `json:"seed"`
	Scale    float64                  `json:"scale"`
	MaxProcs int                      `json:"maxprocs"`
	Env      envJSON                  `json:"env"`
	Datasets []streamDatasetBenchJSON `json:"datasets"`
}

// streamStrategies pairs the wire names with both API surfaces.
var streamStrategies = []struct {
	name     string
	public   minoaner.StreamStrategy
	internal pipeline.StreamStrategy
}{
	{"weight", minoaner.WeightOrdered, pipeline.ScheduleWeightOrdered},
	{"blocks", minoaner.BlockRoundRobin, pipeline.ScheduleBlockRoundRobin},
}

// pairBudgets picks the recall-curve sample points for a stream of n
// pairs: 1, 5%, 10%, 25%, 50%, 75% and 100% of the emitted pairs,
// deduplicated and ascending.
func pairBudgets(n int) []int {
	if n < 1 {
		return nil
	}
	fracs := []float64{0.05, 0.10, 0.25, 0.50, 0.75, 1.0}
	out := []int{1}
	for _, f := range fracs {
		k := int(f * float64(n))
		if k < 1 {
			k = 1
		}
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// drainPublicStream runs one unbudgeted public ResolveStream and
// reports the time to the first pair, the total drain time, and the
// emitted pairs in order.
func drainPublicStream(b *minoaner.Benchmark, cfg minoaner.Config, s minoaner.StreamStrategy) (ttfm, drain int64, pairs []minoaner.ScoredPair, err error) {
	start := time.Now()
	ch, err := minoaner.ResolveStream(context.Background(), b.KB1, b.KB2, cfg,
		minoaner.WithStreamStrategy(s))
	if err != nil {
		return 0, 0, nil, err
	}
	for sp := range ch {
		if len(pairs) == 0 {
			ttfm = time.Since(start).Nanoseconds()
		}
		pairs = append(pairs, sp)
	}
	return ttfm, time.Since(start).Nanoseconds(), pairs, nil
}

// sortedURIPairs sorts match pairs lexicographically for set equality.
func sortedURIPairs(ms []minoaner.Match) []minoaner.Match {
	out := make([]minoaner.Match, len(ms))
	copy(out, ms)
	sort.Slice(out, func(i, j int) bool {
		if out[i].URI1 != out[j].URI1 {
			return out[i].URI1 < out[j].URI1
		}
		return out[i].URI2 < out[j].URI2
	})
	return out
}

func writeStreamBench(path string, datasets []*datagen.Dataset, seed int64, scale float64) error {
	doc := streamBenchJSON{Seed: seed, Scale: scale, MaxProcs: runtime.GOMAXPROCS(0), Env: benchEnv()}
	for _, ds := range datasets {
		// The public benchmark regenerates the same KBs (same generator,
		// seed and scale) with the URI-level API ResolveStream consumes;
		// ds keeps the internal entity IDs the recall machinery needs.
		b, err := minoaner.GenerateBenchmark(ds.Name, seed, scale)
		if err != nil {
			return err
		}
		cfg := minoaner.DefaultConfig()

		// Both sides of the TTFM-vs-resolve ratio time deterministic
		// work, so the minimum over reps — the classic noise-resistant
		// estimator for fixed workloads — is used for both.
		var ref *minoaner.Result
		var resolveNano int64
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			r, err := minoaner.Resolve(b.KB1, b.KB2, cfg)
			if err != nil {
				return err
			}
			elapsed := time.Since(start).Nanoseconds()
			if rep == 0 || elapsed < resolveNano {
				resolveNano = elapsed
			}
			ref = r
		}
		refSorted := sortedURIPairs(ref.Matches)

		batch := eval.Evaluate(matchPairs(ds, ref.Matches), ds.GT)
		entry := streamDatasetBenchJSON{
			Name:        ds.Name,
			Matches:     len(ref.Matches),
			GroundTruth: ds.GT.Len(),
			ResolveNano: resolveNano,
			BatchRecall: batch.Recall,
		}

		for _, strat := range streamStrategies {
			var (
				drains []int64
				first  []minoaner.ScoredPair
			)
			for rep := 0; rep < 3; rep++ {
				_, drain, pairs, err := drainPublicStream(b, cfg, strat.public)
				if err != nil {
					return err
				}
				drains = append(drains, drain)
				if rep == 0 {
					first = pairs
				}
			}
			sort.Slice(drains, func(i, j int) bool { return drains[i] < drains[j] })
			drainNano := drains[1]
			// TTFM reps stop after the first pair (MaxPairs 1), so they
			// cost one prefix each; the minimum over seven samples damps
			// scheduler noise (same estimator as the resolve side).
			var ttfmNano int64
			for rep := 0; rep < 7; rep++ {
				start := time.Now()
				ch, err := minoaner.ResolveStream(context.Background(), b.KB1, b.KB2, cfg,
					minoaner.WithStreamStrategy(strat.public), minoaner.WithMaxPairs(1))
				if err != nil {
					return err
				}
				got := 0
				var ttfm int64
				for range ch {
					ttfm = time.Since(start).Nanoseconds()
					got++
				}
				if got != 1 {
					return fmt.Errorf("%s/%s: MaxPairs(1) emitted %d pairs", ds.Name, strat.name, got)
				}
				if rep == 0 || ttfm < ttfmNano {
					ttfmNano = ttfm
				}
			}

			// Guard 1: emitted scores never increase.
			for i := 1; i < len(first); i++ {
				if first[i].Score > first[i-1].Score {
					return fmt.Errorf("%s/%s: stream score increased at pair %d",
						ds.Name, strat.name, i)
				}
			}
			// Guard 2 (bit-identity): the drained stream is exactly the
			// batch match set.
			streamed := make([]minoaner.Match, len(first))
			for i, sp := range first {
				streamed[i] = minoaner.Match{URI1: sp.URI1, URI2: sp.URI2}
			}
			if got := sortedURIPairs(streamed); !sameMatches(got, refSorted) {
				return fmt.Errorf("%s/%s: drained stream (%d pairs) is not bit-identical to Resolve (%d matches)",
					ds.Name, strat.name, len(got), len(refSorted))
			}

			// The recall curve needs entity IDs: re-run the stream at the
			// core layer (same engine the channel wraps) and check it
			// emits the same pairs in the same order.
			ccfg := core.DefaultConfig()
			ccfg.Strategy = strat.internal
			var corePairs []eval.Pair
			err = core.RunStream(context.Background(), ds.KB1, ds.KB2, ccfg,
				pipeline.StreamBudget{}, func(sp pipeline.ScoredPair) bool {
					corePairs = append(corePairs, sp.Pair)
					return true
				})
			if err != nil {
				return err
			}
			if len(corePairs) != len(first) {
				return fmt.Errorf("%s/%s: core stream emitted %d pairs, public stream %d",
					ds.Name, strat.name, len(corePairs), len(first))
			}
			for i, p := range corePairs {
				if ds.KB1.URI(p.E1) != first[i].URI1 || ds.KB2.URI(p.E2) != first[i].URI2 {
					return fmt.Errorf("%s/%s: core and public streams diverge at pair %d",
						ds.Name, strat.name, i)
				}
			}

			budgets := pairBudgets(len(corePairs))
			recalls := progressive.Curve(corePairs, ds.GT, budgets)
			points := make([]streamBudgetPointJSON, len(budgets))
			for i := range budgets {
				points[i] = streamBudgetPointJSON{Pairs: budgets[i], Recall: recalls[i]}
			}

			speedup := 0.0
			if ttfmNano > 0 {
				speedup = float64(resolveNano) / float64(ttfmNano)
			}
			entry.Strategies = append(entry.Strategies, streamStrategyBenchJSON{
				Strategy:             strat.name,
				FirstMatchNano:       ttfmNano,
				DrainNano:            drainNano,
				Pairs:                len(first),
				TTFMSpeedupVsResolve: speedup,
				AUC:                  progressive.AUC(corePairs, ds.GT),
				RecallAtBudget:       points,
			})
			fmt.Fprintf(os.Stderr, "  %s/%s: ttfm %.3fms, drain %.3fms, resolve %.3fms (%.1fx)\n",
				ds.Name, strat.name, float64(ttfmNano)/1e6, float64(drainNano)/1e6,
				float64(resolveNano)/1e6, speedup)
		}
		doc.Datasets = append(doc.Datasets, entry)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// matchPairs maps URI matches back onto the dataset's entity IDs.
func matchPairs(ds *datagen.Dataset, ms []minoaner.Match) []eval.Pair {
	out := make([]eval.Pair, 0, len(ms))
	for _, m := range ms {
		e1, ok1 := ds.KB1.Lookup(m.URI1)
		e2, ok2 := ds.KB2.Lookup(m.URI2)
		if ok1 && ok2 {
			out = append(out, eval.Pair{E1: e1, E2: e2})
		}
	}
	return out
}
