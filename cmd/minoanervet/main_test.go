package main

import (
	"strings"
	"testing"
)

func TestRunCleanOnRepo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"../../..."}, &out, &errb); code != 0 {
		t.Fatalf("run(../../...) = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}

func TestRunFindingsExitNonzero(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"../../internal/analysis/testdata/src/nowallclock"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run on golden corpus = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	for _, fragment := range []string{"nowallclock:", "imports math/rand", "time.Now"} {
		if !strings.Contains(out.String(), fragment) {
			t.Errorf("output missing %q:\n%s", fragment, out.String())
		}
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr missing summary:\n%s", errb.String())
	}
}

func TestRunRuleSubset(t *testing.T) {
	var out, errb strings.Builder
	// The maporder corpus is clean under every other rule.
	if code := run([]string{"-rules", "nowallclock", "../../internal/analysis/testdata/src/maporder"}, &out, &errb); code != 0 {
		t.Fatalf("run(-rules nowallclock) = %d, want 0\nstdout:\n%s", code, out.String())
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-rules", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("run(-rules bogus) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr missing unknown-rule message:\n%s", errb.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	for _, name := range []string{"maporder", "frozenwrite", "nowallclock", "sectionswitch"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
