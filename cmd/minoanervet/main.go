// Command minoanervet vets the repository against the determinism and
// epoch-immutability invariants every bit-identity guarantee rests on.
// It walks the named packages (default ./...), type-checks them with
// the standard library only, and runs the internal/analysis rule
// suite:
//
//	maporder      map iteration order must not reach ordered output
//	frozenwrite   //minoaner:frozen state is immutable once published
//	nowallclock   no wall-clock or randomness on the match path
//	sectionswitch codec section IDs wired into writer AND reader
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors. Findings
// print position-sorted as file:line:col: rule: message.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"minoaner/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("minoanervet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: minoanervet [-rules r1,r2] [package-dir|dir/... ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, r := range analysis.Rules() {
			fmt.Fprintf(stdout, "%-14s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	cfg := analysis.DefaultConfig()
	if *rulesFlag != "" {
		for _, name := range strings.Split(*rulesFlag, ",") {
			r := analysis.RuleByName(strings.TrimSpace(name))
			if r == nil {
				fmt.Fprintf(stderr, "minoanervet: unknown rule %q (have: %s)\n", name, ruleNames())
				return 2
			}
			cfg.Rules = append(cfg.Rules, r)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "minoanervet: %v\n", err)
		return 2
	}
	ldr, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "minoanervet: %v\n", err)
		return 2
	}
	pkgs, err := ldr.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "minoanervet: %v\n", err)
		return 2
	}

	diags := analysis.Run(ldr, cfg, pkgs)
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "minoanervet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func ruleNames() string {
	var names []string
	for _, r := range analysis.Rules() {
		names = append(names, r.Name)
	}
	return strings.Join(names, ", ")
}
