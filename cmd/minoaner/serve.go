package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minoaner"
)

// runServe loads (or builds) an index and serves resolution queries
// over HTTP/JSON until interrupted. With -replica it instead
// bootstraps from a primary server's snapshot and tails its mutation
// journal, serving reads that are bit-identical to the primary's at
// every epoch it reaches. SIGINT or SIGTERM triggers a graceful
// shutdown that drains in-flight requests (a second signal kills the
// process outright).
func runServe(args []string) {
	fs := flag.NewFlagSet("minoaner serve", flag.ExitOnError)
	mc := declareMatchFlags(fs)
	indexPath := fs.String("index", "", "snapshot file to serve (from 'minoaner snapshot'); overrides -kb1/-kb2")
	eager := fs.Bool("eager", false, "with -index: decode the whole snapshot at startup instead of mapping it and decoding sections on first use")
	mutable := fs.Bool("mutable", false, "enable POST /upsert and /delete: live entity mutations with atomic epoch swaps (requires an index with retained sources)")
	shards := fs.Int("shards", 0, "shard the index substrate into this many hash partitions: /delta scatters across them in parallel and mutations patch only the owning shards, with bit-identical answers (0 keeps the index's own shard count; 1 forces unsharded)")
	replica := fs.Bool("replica", false, "serve as a read replica: bootstrap from -primary's /snapshot and tail its /journal (conflicts with -mutable, -index, -kb1/-kb2, -shards)")
	primary := fs.String("primary", "", "primary server base URL to replicate from (e.g. http://primary:8080); requires -replica")
	poll := fs.Duration("poll", 500*time.Millisecond, "replica journal poll interval when caught up")
	addr := fs.String("addr", ":8080", "listen address")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "maximum duration for reading one request (body included)")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "maximum duration for writing one response")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "how long a graceful shutdown waits for in-flight requests")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var ix *minoaner.Index
	var serverOpts []minoaner.ServerOption
	start := time.Now()
	switch {
	case *replica:
		if *primary == "" {
			log.Fatal("-replica requires -primary URL")
		}
		if *mutable {
			log.Fatal("-replica conflicts with -mutable: replicas apply only the primary's mutations")
		}
		if *indexPath != "" || mc.kbsDeclared() {
			log.Fatal("-replica conflicts with -index and -kb1/-kb2: replicas bootstrap from the primary's snapshot")
		}
		if *shards > 0 {
			log.Fatal("-replica conflicts with -shards: replicas mirror the primary's sharding")
		}
		rep, err := minoaner.NewReplica(*primary,
			minoaner.WithReplicaPoll(*poll),
			minoaner.WithReplicaJitterSeed(uint64(time.Now().UnixNano())))
		if err != nil {
			log.Fatal(err)
		}
		for attempt := 1; ; attempt++ {
			if _, err = rep.Bootstrap(ctx); err == nil {
				break
			}
			if ctx.Err() != nil || attempt >= 30 {
				log.Fatalf("bootstrapping from %s: %v", *primary, err)
			}
			fmt.Fprintf(os.Stderr, "bootstrap attempt %d from %s failed (%v), retrying\n", attempt, *primary, err)
			time.Sleep(time.Second)
		}
		ix = rep.Index()
		fmt.Fprintf(os.Stderr, "replica bootstrapped from %s at epoch %d in %v\n",
			*primary, ix.Epoch(), time.Since(start).Round(time.Millisecond))
		serverOpts = append(serverOpts, minoaner.WithReplica(rep))
		go func() {
			if err := rep.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "replication stopped: %v\n", err)
			}
		}()
	case *indexPath != "":
		var err error
		verb := "mapped"
		if *eager {
			ix, err = minoaner.LoadIndexFile(*indexPath)
			verb = "loaded"
		} else {
			// The default: mmap the snapshot and decode lazily, so the
			// server answers its first query almost immediately; the
			// heavier delta-path structures decode on first use.
			ix, err = minoaner.OpenIndexFile(*indexPath)
		}
		if err != nil {
			log.Fatalf("loading %s: %v", *indexPath, err)
		}
		fmt.Fprintf(os.Stderr, "index %s %s in %v\n", *indexPath, verb, time.Since(start).Round(time.Millisecond))
	default:
		kb1, kb2 := mc.loadKBs(fs)
		var err error
		ix, err = minoaner.BuildIndexContext(context.Background(), kb1, kb2, mc.config(), mc.progressOptions()...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "index built in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if *shards > 0 {
		if err := ix.Reshard(*shards); err != nil {
			log.Fatalf("-shards: %v", err)
		}
	}
	if !ix.Prepared() {
		t0 := time.Now()
		ix.Prepare()
		fmt.Fprintf(os.Stderr, "delta substrate prepared in %v (persist it with 'minoaner snapshot')\n",
			time.Since(t0).Round(time.Millisecond))
	}
	if *mutable {
		if !ix.Mutable() {
			log.Fatal("-mutable: this index is read-only (its KBs lack retained source triples); rebuild the snapshot from .nt inputs")
		}
		serverOpts = append(serverOpts, minoaner.WithMutations())
	}
	// The startup summary sticks to open-time state (Stats would force
	// a mapped index to decode its KB bulk before serving).
	shardNote := ""
	if k := ix.Shards(); k > 1 {
		shardNote = fmt.Sprintf(", %d shards", k)
	}
	modeNote := ""
	switch {
	case *mutable:
		modeNote = ", mutable"
	case *replica:
		modeNote = ", replica"
	}
	fmt.Fprintf(os.Stderr, "serving %d matches over %d+%d entities (epoch %d%s%s)\n",
		ix.NumMatches(), ix.KB1().Len(), ix.KB2().Len(), ix.Epoch(), modeNote, shardNote)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           minoaner.NewServer(ix, serverOpts...),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // second signal kills the process outright
		fmt.Fprintln(os.Stderr, "shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("shutdown: %v", err)
		}
		fmt.Fprintln(os.Stderr, "bye")
	}
}
