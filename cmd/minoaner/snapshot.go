package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"minoaner"
)

// runSnapshot builds the full index for a KB pair and persists it, or
// inspects an existing snapshot.
func runSnapshot(args []string) {
	fs := flag.NewFlagSet("minoaner snapshot", flag.ExitOnError)
	mc := declareMatchFlags(fs)
	out := fs.String("o", "index.msnp", "output snapshot file")
	prepare := fs.Bool("prepare", true, "freeze the delta substrate into the snapshot so 'serve' answers /delta in O(|delta|) without re-deriving it")
	shards := fs.Int("shards", 1, "hash-partition the index substrate into this many shards, persisted in the snapshot (1 = unsharded; answers are bit-identical at any count)")
	inspect := fs.String("inspect", "", "describe an existing snapshot instead of building one")
	compact := fs.String("compact", "", "load an existing snapshot, drop its mutation journal and flatten its substrate, and rewrite it (to -o)")
	fs.Parse(args)

	if *inspect != "" {
		inspectSnapshot(*inspect)
		return
	}
	if *compact != "" {
		compactSnapshot(*compact, *out)
		return
	}

	kb1, kb2 := mc.loadKBs(fs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	start := time.Now()
	opts := append(mc.progressOptions(), minoaner.WithShards(*shards))
	ix, err := minoaner.BuildIndexContext(ctx, kb1, kb2, mc.config(), opts...)
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	if err != nil {
		log.Fatal(err)
	}
	built := time.Since(start)
	if *prepare {
		ix.Prepare()
	}
	if err := minoaner.SaveIndexFile(*out, ix); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Fprintf(os.Stderr, "index built in %v: %d matches (H1=%d H2=%d H3=%d), |BN|=%d |BT|=%d\n",
		built.Round(time.Millisecond), st.Matches, st.ByName, st.ByValue, st.ByRank,
		st.NameBlocks, st.TokenBlocks)
	fmt.Fprintf(os.Stderr, "snapshot: %s (%.1f MB)\n", *out, float64(info.Size())/(1<<20))
}

// compactSnapshot rewrites a snapshot with its journal dropped (the
// epoch number survives) and its blocking substrate flattened.
func compactSnapshot(in, out string) {
	start := time.Now()
	ix, err := minoaner.LoadIndexFile(in)
	if err != nil {
		log.Fatalf("loading %s: %v", in, err)
	}
	entries := len(ix.Journal())
	ix.Compact()
	if err := minoaner.SaveIndexFile(out, ix); err != nil {
		log.Fatalf("writing %s: %v", out, err)
	}
	info, err := os.Stat(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "compacted %s -> %s in %v: epoch %d kept, %d journal entries dropped (%.1f MB)\n",
		in, out, time.Since(start).Round(time.Millisecond), ix.Epoch(), entries, float64(info.Size())/(1<<20))
}

// inspectSnapshot describes a snapshot from its section directory —
// O(header), not O(index): the KB and substrate bulk is never decoded,
// so inspecting a multi-gigabyte snapshot is as fast as a tiny one.
func inspectSnapshot(path string) {
	start := time.Now()
	si, err := minoaner.InspectIndexFile(path)
	if err != nil {
		log.Fatalf("inspecting %s: %v", path, err)
	}
	cfg := si.Config
	fmt.Printf("snapshot %s (inspected in %v, %.1f MB)\n",
		path, time.Since(start).Round(time.Millisecond), float64(si.Size)/(1<<20))
	fmt.Printf("  KB1: %s — %d entities, %d triples\n", si.KB1.Name, si.KB1.Entities, si.KB1.Triples)
	fmt.Printf("  KB2: %s — %d entities, %d triples\n", si.KB2.Name, si.KB2.Entities, si.KB2.Triples)
	fmt.Printf("  config: K=%d N=%d names=%d theta=%g\n", cfg.K, cfg.N, cfg.NameAttributes, cfg.Theta)
	fmt.Printf("  blocks: |BN|=%d ||BN||=%d |BT|=%d ||BT||=%d purged=%d\n",
		si.NameBlocks, si.NameComparisons, si.TokenBlocks, si.TokenComparisons, si.PurgedBlocks)
	fmt.Printf("  matches: %d (H1=%d H2=%d H3=%d, H4 discarded %d)\n",
		si.Matches, si.ByName, si.ByValue, si.ByRank, si.DiscardedByH4)
	if si.Prepared {
		fmt.Printf("  delta substrate: prepared (O(|delta|) /delta queries)\n")
	} else {
		fmt.Printf("  delta substrate: absent (built on demand; re-snapshot with -prepare to persist it)\n")
	}
	if si.Shards > 1 {
		fmt.Printf("  sharding: %d hash partitions (scatter-gather /delta, owner-routed mutations)\n", si.Shards)
	} else {
		fmt.Printf("  sharding: none (re-snapshot with -shards k to partition the substrate)\n")
	}
	if si.Mutable() {
		fmt.Printf("  mutability: sources retained — epoch %d, %d journal entries (serve -mutable accepts /upsert and /delete)\n",
			si.Epoch, si.JournalEntries)
	} else {
		fmt.Printf("  mutability: read-only (no retained sources; rebuild the snapshot from .nt inputs to mutate it)\n")
	}
}
