// Command minoaner resolves the entities of two N-Triples knowledge
// bases. It has three subcommands:
//
//	minoaner resolve  -kb1 a.nt -kb2 b.nt [-gt truth.csv] [flags]
//	minoaner snapshot -kb1 a.nt -kb2 b.nt -o index.msnp [flags]
//	minoaner serve    -index index.msnp -addr :8080
//
// resolve runs the batch matching process and prints the matches (and,
// when a ground truth is supplied, precision / recall / F1). snapshot
// builds the full index once and persists it; serve loads a snapshot
// (or builds an index on startup) and answers resolution queries over
// HTTP/JSON. Invoking minoaner with flags but no subcommand is
// equivalent to resolve, preserving the original CLI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"minoaner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("minoaner: ")

	args := os.Args[1:]
	if len(args) > 0 && (args[0] == "-h" || args[0] == "--help") {
		usage()
		return
	}
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "resolve":
			runResolve(args[1:])
		case "snapshot":
			runSnapshot(args[1:])
		case "serve":
			runServe(args[1:])
		case "help":
			usage()
		default:
			fmt.Fprintf(os.Stderr, "minoaner: unknown subcommand %q\n\n", args[0])
			usage()
			os.Exit(2)
		}
		return
	}
	// Legacy invocation: bare flags mean resolve.
	runResolve(args)
}

func usage() {
	fmt.Fprint(os.Stderr, `Usage:

  minoaner resolve  -kb1 a.nt -kb2 b.nt [-gt truth.csv] [flags]
  minoaner snapshot -kb1 a.nt -kb2 b.nt -o index.msnp [flags]
  minoaner snapshot -inspect index.msnp
  minoaner serve    -index index.msnp [-addr :8080]
  minoaner serve    -kb1 a.nt -kb2 b.nt [-addr :8080]
  minoaner serve    -replica -primary http://primary:8080 [-addr :8081]

Run a subcommand with -h for its flags. Flags without a subcommand run
'resolve' (the original CLI).
`)
}

// matchConfig declares the MinoanER parameter flags shared by resolve
// and snapshot on the given flag set.
type matchConfig struct {
	k, n, nameK                *int
	theta                      *float64
	workers                    *int
	noH1, noH2, noH3, noH4     *bool
	kb1Path, kb2Path           *string
	lenient, verbose, useCache *bool
}

func declareMatchFlags(fs *flag.FlagSet) *matchConfig {
	return &matchConfig{
		kb1Path:  fs.String("kb1", "", "first KB (N-Triples file, required)"),
		kb2Path:  fs.String("kb2", "", "second KB (N-Triples file, required)"),
		k:        fs.Int("k", 15, "candidates kept per entity per evidence type (K)"),
		n:        fs.Int("n", 3, "most important relations per entity (N)"),
		nameK:    fs.Int("names", 2, "top attributes per KB serving as names (k)"),
		theta:    fs.Float64("theta", 0.6, "value-vs-neighbor rank trade-off (θ)"),
		workers:  fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)"),
		noH1:     fs.Bool("no-h1", false, "disable the name heuristic"),
		noH2:     fs.Bool("no-h2", false, "disable the value heuristic"),
		noH3:     fs.Bool("no-h3", false, "disable rank aggregation"),
		noH4:     fs.Bool("no-h4", false, "disable the reciprocity filter"),
		lenient:  fs.Bool("lenient", false, "skip malformed or oversize N-Triples lines instead of failing"),
		useCache: fs.Bool("cache", false, "cache parsed KBs next to the input as <file>.mkb and reuse them"),
		verbose:  fs.Bool("v", false, "print per-stage progress and timings to stderr"),
	}
}

func (mc *matchConfig) config() minoaner.Config {
	cfg := minoaner.DefaultConfig()
	cfg.K = *mc.k
	cfg.N = *mc.n
	cfg.NameAttributes = *mc.nameK
	cfg.Theta = *mc.theta
	cfg.Workers = *mc.workers
	cfg.DisableH1 = *mc.noH1
	cfg.DisableH2 = *mc.noH2
	cfg.DisableH3 = *mc.noH3
	cfg.DisableH4 = *mc.noH4
	return cfg
}

// kbsDeclared reports whether either KB path flag was set — serve uses
// it to reject -kb1/-kb2 alongside -replica.
func (mc *matchConfig) kbsDeclared() bool {
	return *mc.kb1Path != "" || *mc.kb2Path != ""
}

// loadKBs loads both KBs per the shared flags (lenient parsing, binary
// caching) and prints their statistics.
func (mc *matchConfig) loadKBs(fs *flag.FlagSet) (*minoaner.KB, *minoaner.KB) {
	if *mc.kb1Path == "" || *mc.kb2Path == "" {
		fs.Usage()
		os.Exit(2)
	}
	load := loadPlain
	if *mc.lenient {
		load = loadLenient
	}
	if *mc.useCache {
		parse := load // cache misses honor -lenient too
		load = func(name, path string) (*minoaner.KB, error) {
			return loadCached(name, path, parse)
		}
	}
	kb1, err := load("KB1", *mc.kb1Path)
	if err != nil {
		log.Fatalf("loading %s: %v", *mc.kb1Path, err)
	}
	kb2, err := load("KB2", *mc.kb2Path)
	if err != nil {
		log.Fatalf("loading %s: %v", *mc.kb2Path, err)
	}
	fmt.Fprintf(os.Stderr, "KB1: %+v\n", kb1.Stats())
	fmt.Fprintf(os.Stderr, "KB2: %+v\n", kb2.Stats())
	return kb1, kb2
}

// progressOptions returns the -v stage-timing progress option, if
// enabled.
func (mc *matchConfig) progressOptions() []minoaner.ResolveOption {
	if !*mc.verbose {
		return nil
	}
	return []minoaner.ResolveOption{minoaner.WithProgress(func(p minoaner.StageProgress) {
		if !p.Done {
			return
		}
		fmt.Fprintf(os.Stderr, "stage %2d/%d %-20s %12v %10.1f MB\n",
			p.Index+1, p.Total, p.Stage, p.Timing.Duration.Round(10*time.Microsecond),
			float64(p.Timing.AllocBytes)/(1<<20))
	})}
}

func loadPlain(name, path string) (*minoaner.KB, error) {
	return minoaner.LoadKBFile(name, path)
}

// loadLenient skips malformed lines, reporting how many were dropped.
func loadLenient(name, path string) (*minoaner.KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	kb, skipped, err := minoaner.LoadKBLenient(name, f)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "%s: skipped %d malformed line(s)\n", name, skipped)
	}
	return kb, nil
}

// loadCached reuses <path>.mkb when it exists; otherwise it parses the
// N-Triples file with the given loader and writes the cache for the
// next run.
func loadCached(name, path string, parse func(name, path string) (*minoaner.KB, error)) (*minoaner.KB, error) {
	cachePath := path + ".mkb"
	if f, err := os.Open(cachePath); err == nil {
		defer f.Close()
		kb, err := minoaner.ReadKBBinary(f)
		if err == nil {
			fmt.Fprintf(os.Stderr, "loaded %s from cache %s\n", name, cachePath)
			return kb, nil
		}
		fmt.Fprintf(os.Stderr, "cache %s unusable (%v); re-parsing\n", cachePath, err)
	}
	kb, err := parse(name, path)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(cachePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cannot write cache %s: %v\n", cachePath, err)
		return kb, nil
	}
	defer f.Close()
	if err := kb.WriteBinary(f); err != nil {
		fmt.Fprintf(os.Stderr, "cannot write cache %s: %v\n", cachePath, err)
	}
	return kb, nil
}
