// Command minoaner resolves the entities of two N-Triples knowledge
// bases and prints the matches (and, when a ground truth is supplied,
// precision / recall / F1).
//
// Usage:
//
//	minoaner -kb1 first.nt -kb2 second.nt [-gt truth.csv] [flags]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"minoaner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("minoaner: ")

	var (
		kb1Path = flag.String("kb1", "", "first KB (N-Triples file, required)")
		kb2Path = flag.String("kb2", "", "second KB (N-Triples file, required)")
		gtPath  = flag.String("gt", "", "optional ground truth CSV (uri1,uri2 lines)")
		k       = flag.Int("k", 15, "candidates kept per entity per evidence type (K)")
		n       = flag.Int("n", 3, "most important relations per entity (N)")
		nameK   = flag.Int("names", 2, "top attributes per KB serving as names (k)")
		theta   = flag.Float64("theta", 0.6, "value-vs-neighbor rank trade-off (θ)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		noH1    = flag.Bool("no-h1", false, "disable the name heuristic")
		noH2    = flag.Bool("no-h2", false, "disable the value heuristic")
		noH3    = flag.Bool("no-h3", false, "disable rank aggregation")
		noH4    = flag.Bool("no-h4", false, "disable the reciprocity filter")
		quiet   = flag.Bool("quiet", false, "suppress the match listing")
		cache   = flag.Bool("cache", false, "cache parsed KBs next to the input as <file>.mkb and reuse them")
		lenient = flag.Bool("lenient", false, "skip malformed or oversize N-Triples lines instead of failing")
		verbose = flag.Bool("v", false, "print per-stage progress and timings to stderr")
	)
	flag.Parse()
	if *kb1Path == "" || *kb2Path == "" {
		flag.Usage()
		os.Exit(2)
	}

	load := loadPlain
	if *lenient {
		load = loadLenient
	}
	if *cache {
		parse := load // cache misses honor -lenient too
		load = func(name, path string) (*minoaner.KB, error) {
			return loadCached(name, path, parse)
		}
	}
	kb1, err := load("KB1", *kb1Path)
	if err != nil {
		log.Fatalf("loading %s: %v", *kb1Path, err)
	}
	kb2, err := load("KB2", *kb2Path)
	if err != nil {
		log.Fatalf("loading %s: %v", *kb2Path, err)
	}
	fmt.Fprintf(os.Stderr, "KB1: %+v\n", kb1.Stats())
	fmt.Fprintf(os.Stderr, "KB2: %+v\n", kb2.Stats())

	cfg := minoaner.DefaultConfig()
	cfg.K = *k
	cfg.N = *n
	cfg.NameAttributes = *nameK
	cfg.Theta = *theta
	cfg.Workers = *workers
	cfg.DisableH1 = *noH1
	cfg.DisableH2 = *noH2
	cfg.DisableH3 = *noH3
	cfg.DisableH4 = *noH4

	// Ctrl-C cancels the run between pipeline stages and inside the
	// parallel candidate loops. The handler uninstalls itself once the
	// first signal fires, so a second Ctrl-C kills the process outright
	// even if a stage without internal cancellation checks is running.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	var opts []minoaner.ResolveOption
	if *verbose {
		opts = append(opts, minoaner.WithProgress(func(p minoaner.StageProgress) {
			if !p.Done {
				return
			}
			fmt.Fprintf(os.Stderr, "stage %2d/%d %-20s %12v %10.1f MB\n",
				p.Index+1, p.Total, p.Stage, p.Timing.Duration.Round(10*time.Microsecond),
				float64(p.Timing.AllocBytes)/(1<<20))
		}))
	}
	res, err := minoaner.ResolveContext(ctx, kb1, kb2, cfg, opts...)
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		for _, m := range res.Matches {
			fmt.Printf("%s,%s\n", m.URI1, m.URI2)
		}
	}
	fmt.Fprintf(os.Stderr, "matches: %d (H1=%d H2=%d H3=%d, H4 discarded %d)\n",
		len(res.Matches), res.ByName, res.ByValue, res.ByRank, res.DiscardedByReciprocity)
	fmt.Fprintf(os.Stderr, "blocks: |BN|=%d ||BN||=%d |BT|=%d ||BT||=%d purged=%d\n",
		res.NameBlocks, res.NameComparisons, res.TokenBlocks, res.TokenComparisons, res.PurgedBlocks)

	if *gtPath != "" {
		gt, err := minoaner.LoadGroundTruthFile(kb1, kb2, *gtPath)
		if err != nil {
			log.Fatalf("loading %s: %v", *gtPath, err)
		}
		m := res.Evaluate(gt)
		fmt.Fprintf(os.Stderr, "evaluation: %s (TP=%d FP=%d FN=%d of %d)\n",
			m, m.TP, m.FP, m.FN, gt.Len())
	}
}

func loadPlain(name, path string) (*minoaner.KB, error) {
	return minoaner.LoadKBFile(name, path)
}

// loadLenient skips malformed lines, reporting how many were dropped.
func loadLenient(name, path string) (*minoaner.KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	kb, skipped, err := minoaner.LoadKBLenient(name, f)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "%s: skipped %d malformed line(s)\n", name, skipped)
	}
	return kb, nil
}

// loadCached reuses <path>.mkb when it exists; otherwise it parses the
// N-Triples file with the given loader and writes the cache for the
// next run.
func loadCached(name, path string, parse func(name, path string) (*minoaner.KB, error)) (*minoaner.KB, error) {
	cachePath := path + ".mkb"
	if f, err := os.Open(cachePath); err == nil {
		defer f.Close()
		kb, err := minoaner.ReadKBBinary(f)
		if err == nil {
			fmt.Fprintf(os.Stderr, "loaded %s from cache %s\n", name, cachePath)
			return kb, nil
		}
		fmt.Fprintf(os.Stderr, "cache %s unusable (%v); re-parsing\n", cachePath, err)
	}
	kb, err := parse(name, path)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(cachePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cannot write cache %s: %v\n", cachePath, err)
		return kb, nil
	}
	defer f.Close()
	if err := kb.WriteBinary(f); err != nil {
		fmt.Fprintf(os.Stderr, "cannot write cache %s: %v\n", cachePath, err)
	}
	return kb, nil
}
