package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"minoaner"
)

// runResolve is the batch matching subcommand (and the legacy bare-flag
// CLI).
func runResolve(args []string) {
	fs := flag.NewFlagSet("minoaner resolve", flag.ExitOnError)
	mc := declareMatchFlags(fs)
	gtPath := fs.String("gt", "", "optional ground truth CSV (uri1,uri2 lines)")
	quiet := fs.Bool("quiet", false, "suppress the match listing")
	stream := fs.Bool("stream", false, "anytime mode: emit each match as soon as it is confirmed, best first")
	maxPairs := fs.Int("max-pairs", 0, "with -stream, stop after this many matches (0 = unlimited)")
	maxComparisons := fs.Int64("max-comparisons", 0, "with -stream, stop after this many candidate comparisons (0 = unlimited)")
	streamBudget := fs.Duration("stream-budget", 0, "with -stream, wall-clock budget (0 = unlimited)")
	strategy := fs.String("strategy", "weight", "with -stream, pair scheduler: weight | blocks")
	fs.Parse(args)

	kb1, kb2 := mc.loadKBs(fs)
	cfg := mc.config()

	// Ctrl-C cancels the run between pipeline stages and inside the
	// parallel candidate loops. The handler uninstalls itself once the
	// first signal fires, so a second Ctrl-C kills the process outright
	// even if a stage without internal cancellation checks is running.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	if *stream {
		streamResolve(ctx, kb1, kb2, cfg, streamFlags{
			maxPairs:       *maxPairs,
			maxComparisons: *maxComparisons,
			budget:         *streamBudget,
			strategy:       *strategy,
			quiet:          *quiet,
		})
		return
	}

	res, err := minoaner.ResolveContext(ctx, kb1, kb2, cfg, mc.progressOptions()...)
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		for _, m := range res.Matches {
			fmt.Printf("%s,%s\n", m.URI1, m.URI2)
		}
	}
	fmt.Fprintf(os.Stderr, "matches: %d (H1=%d H2=%d H3=%d, H4 discarded %d)\n",
		len(res.Matches), res.ByName, res.ByValue, res.ByRank, res.DiscardedByReciprocity)
	fmt.Fprintf(os.Stderr, "blocks: |BN|=%d ||BN||=%d |BT|=%d ||BT||=%d purged=%d\n",
		res.NameBlocks, res.NameComparisons, res.TokenBlocks, res.TokenComparisons, res.PurgedBlocks)

	if *gtPath != "" {
		gt, err := minoaner.LoadGroundTruthFile(kb1, kb2, *gtPath)
		if err != nil {
			log.Fatalf("loading %s: %v", *gtPath, err)
		}
		m := res.Evaluate(gt)
		fmt.Fprintf(os.Stderr, "evaluation: %s (TP=%d FP=%d FN=%d of %d)\n",
			m, m.TP, m.FP, m.FN, gt.Len())
	}
}

// streamFlags carries the -stream mode options.
type streamFlags struct {
	maxPairs       int
	maxComparisons int64
	budget         time.Duration
	strategy       string
	quiet          bool
}

// streamResolve runs the anytime resolution: matches print as
// "uri1,uri2,score,heuristic" lines the moment they are confirmed,
// best pairs first, and the stderr summary reports the time to the
// first match alongside the totals.
func streamResolve(ctx context.Context, kb1, kb2 *minoaner.KB, cfg minoaner.Config, sf streamFlags) {
	opts := []minoaner.StreamOption{}
	if sf.maxPairs > 0 {
		opts = append(opts, minoaner.WithMaxPairs(sf.maxPairs))
	}
	if sf.maxComparisons > 0 {
		opts = append(opts, minoaner.WithMaxComparisons(sf.maxComparisons))
	}
	switch sf.strategy {
	case "weight":
		opts = append(opts, minoaner.WithStreamStrategy(minoaner.WeightOrdered))
	case "blocks":
		opts = append(opts, minoaner.WithStreamStrategy(minoaner.BlockRoundRobin))
	default:
		log.Fatalf("unknown -strategy %q (want weight or blocks)", sf.strategy)
	}
	if sf.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sf.budget)
		defer cancel()
	}

	start := time.Now()
	ch, err := minoaner.ResolveStream(ctx, kb1, kb2, cfg, opts...)
	if err != nil {
		log.Fatal(err)
	}
	var (
		count int
		ttfm  time.Duration
	)
	w := bufio.NewWriter(os.Stdout)
	for sp := range ch {
		if count == 0 {
			ttfm = time.Since(start)
		}
		count++
		if !sf.quiet {
			fmt.Fprintf(w, "%s,%s,%.6f,%s\n", sp.URI1, sp.URI2, sp.Score, sp.Heuristic)
		}
	}
	w.Flush()
	if err := ctx.Err(); errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "interrupted")
	} else if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "wall-clock budget reached")
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "matches: %d, first after %v, drained in %v\n",
			count, ttfm.Round(10*time.Microsecond), time.Since(start).Round(10*time.Microsecond))
	} else {
		fmt.Fprintf(os.Stderr, "matches: 0 (drained in %v)\n", time.Since(start).Round(10*time.Microsecond))
	}
}
