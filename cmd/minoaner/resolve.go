package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"minoaner"
)

// runResolve is the batch matching subcommand (and the legacy bare-flag
// CLI).
func runResolve(args []string) {
	fs := flag.NewFlagSet("minoaner resolve", flag.ExitOnError)
	mc := declareMatchFlags(fs)
	gtPath := fs.String("gt", "", "optional ground truth CSV (uri1,uri2 lines)")
	quiet := fs.Bool("quiet", false, "suppress the match listing")
	fs.Parse(args)

	kb1, kb2 := mc.loadKBs(fs)
	cfg := mc.config()

	// Ctrl-C cancels the run between pipeline stages and inside the
	// parallel candidate loops. The handler uninstalls itself once the
	// first signal fires, so a second Ctrl-C kills the process outright
	// even if a stage without internal cancellation checks is running.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	res, err := minoaner.ResolveContext(ctx, kb1, kb2, cfg, mc.progressOptions()...)
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		for _, m := range res.Matches {
			fmt.Printf("%s,%s\n", m.URI1, m.URI2)
		}
	}
	fmt.Fprintf(os.Stderr, "matches: %d (H1=%d H2=%d H3=%d, H4 discarded %d)\n",
		len(res.Matches), res.ByName, res.ByValue, res.ByRank, res.DiscardedByReciprocity)
	fmt.Fprintf(os.Stderr, "blocks: |BN|=%d ||BN||=%d |BT|=%d ||BT||=%d purged=%d\n",
		res.NameBlocks, res.NameComparisons, res.TokenBlocks, res.TokenComparisons, res.PurgedBlocks)

	if *gtPath != "" {
		gt, err := minoaner.LoadGroundTruthFile(kb1, kb2, *gtPath)
		if err != nil {
			log.Fatalf("loading %s: %v", *gtPath, err)
		}
		m := res.Evaluate(gt)
		fmt.Fprintf(os.Stderr, "evaluation: %s (TP=%d FP=%d FN=%d of %d)\n",
			m, m.TP, m.FP, m.FN, gt.Len())
	}
}
