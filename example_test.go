package minoaner_test

import (
	"fmt"
	"log"
	"strings"

	"minoaner"
)

// ExampleResolve demonstrates the end-to-end pipeline on two tiny KBs
// published under different vocabularies.
func ExampleResolve() {
	kb1, err := minoaner.LoadKB("A", strings.NewReader(`
<http://a/joes> <http://va/name> "Joe's Diner" .
<http://a/joes> <http://va/city> <http://a/springfield> .
<http://a/springfield> <http://va/label> "Springfield" .
`))
	if err != nil {
		log.Fatal(err)
	}
	kb2, err := minoaner.LoadKB("B", strings.NewReader(`
<http://b/42> <http://vb/title> "joe s diner" .
<http://b/42> <http://vb/town> <http://b/900> .
<http://b/900> <http://vb/name> "Springfield" .
`))
	if err != nil {
		log.Fatal(err)
	}
	res, err := minoaner.Resolve(kb1, kb2, minoaner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.Matches {
		fmt.Println(m.URI1, "<->", m.URI2)
	}
	// Output:
	// http://a/joes <-> http://b/42
	// http://a/springfield <-> http://b/900
}

// ExampleGenerateBenchmark shows how to reproduce a paper benchmark
// stand-in and evaluate against its ground truth.
func ExampleGenerateBenchmark() {
	bench, err := minoaner.GenerateBenchmark("Restaurant", 42, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := minoaner.Resolve(bench.KB1, bench.KB2, minoaner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Evaluate(bench.GroundTruth))
	// Output:
	// P=100.00% R=100.00% F1=100.00%
}

// ExampleConfig shows an ablated configuration: value evidence only.
func ExampleConfig() {
	cfg := minoaner.DefaultConfig()
	cfg.DisableH1 = true // no name heuristic
	cfg.DisableH3 = true // no neighbor evidence
	fmt.Println(cfg.K, cfg.N, cfg.NameAttributes, cfg.Theta)
	// Output:
	// 15 3 2 0.6
}
