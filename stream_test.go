package minoaner_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"minoaner"
)

// drainResolveStream drains one ResolveStream run and returns the pairs
// in emission order.
func drainResolveStream(t *testing.T, b *minoaner.Benchmark, opts ...minoaner.StreamOption) []minoaner.ScoredPair {
	t.Helper()
	ch, err := minoaner.ResolveStream(context.Background(), b.KB1, b.KB2, minoaner.DefaultConfig(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	var out []minoaner.ScoredPair
	for sp := range ch {
		out = append(out, sp)
	}
	return out
}

// streamMatchSet projects a stream onto its sorted URI-pair set.
func streamMatchSet(pairs []minoaner.ScoredPair) []minoaner.Match {
	ms := make([]minoaner.Match, len(pairs))
	for i, sp := range pairs {
		ms[i] = minoaner.Match{URI1: sp.URI1, URI2: sp.URI2}
	}
	return sortMatches(ms)
}

// TestResolveStreamDrainEqualsResolve is the anytime acceptance
// property on the public API: an unbudgeted stream, drained, is exactly
// the batch match set — under both schedulers — and the emitted scores
// never increase.
func TestResolveStreamDrainEqualsResolve(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		t.Run(name, func(t *testing.T) {
			b, err := minoaner.GenerateBenchmark(name, 7, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := minoaner.Resolve(b.KB1, b.KB2, minoaner.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) == 0 {
				t.Fatal("batch run produced no matches; fixture too small")
			}
			want := sortMatches(res.Matches)
			for _, s := range []minoaner.StreamStrategy{minoaner.WeightOrdered, minoaner.BlockRoundRobin} {
				got := drainResolveStream(t, b, minoaner.WithStreamStrategy(s))
				for i := 1; i < len(got); i++ {
					if got[i].Score > got[i-1].Score {
						t.Fatalf("strategy %d: score increased at pair %d", s, i)
					}
				}
				if !reflect.DeepEqual(streamMatchSet(got), want) {
					t.Errorf("strategy %d: drained stream (%d pairs) != batch matches (%d)",
						s, len(got), len(want))
				}
			}
		})
	}
}

// TestResolveStreamDeterministicOrder: the emission order (not just the
// set) is reproducible run over run.
func TestResolveStreamDeterministicOrder(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base := drainResolveStream(t, b)
	for rep := 0; rep < 3; rep++ {
		if again := drainResolveStream(t, b); !reflect.DeepEqual(again, base) {
			t.Fatalf("rep %d: emission order changed across runs", rep)
		}
	}
}

// TestResolveStreamMaxPairsPrefix: a MaxPairs budget yields exactly the
// first n pairs of the unbudgeted stream and then closes the channel.
func TestResolveStreamMaxPairsPrefix(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	full := drainResolveStream(t, b)
	if len(full) < 4 {
		t.Fatalf("need at least 4 matches, got %d", len(full))
	}
	k := len(full) / 2
	got := drainResolveStream(t, b, minoaner.WithMaxPairs(k))
	if !reflect.DeepEqual(got, full[:k]) {
		t.Errorf("MaxPairs=%d did not yield the first %d pairs of the unbudgeted stream", k, k)
	}
}

// TestResolveStreamConfigErrorIsSynchronous: a bad configuration is
// reported by the call itself, before any goroutine or channel exists.
func TestResolveStreamConfigErrorIsSynchronous(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	bad := minoaner.DefaultConfig()
	bad.Theta = 2 // out of (0,1)
	if _, err := minoaner.ResolveStream(context.Background(), b.KB1, b.KB2, bad); err == nil {
		t.Fatal("expected a synchronous configuration error")
	}
}

// TestQueryKBStreamEqualsQueryKB: the index's streaming delta query,
// drained unbudgeted, reports exactly QueryKB's match set.
func TestQueryKBStreamEqualsQueryKB(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 7, 0.15)
	delta, err := b.DeltaKB("delta", sampleDeltaURIs(b, 6)...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.QueryKB(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) == 0 {
		t.Fatal("QueryKB found no matches; fixture too small")
	}
	ch, err := ix.QueryKBStream(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	var got []minoaner.ScoredPair
	for sp := range ch {
		got = append(got, sp)
	}
	if !reflect.DeepEqual(streamMatchSet(got), sortMatches(want.Matches)) {
		t.Errorf("drained QueryKBStream (%d pairs) != QueryKB matches (%d)",
			len(got), len(want.Matches))
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (small slack for runtime bookkeeping) or the deadline hits.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudges finalizers and parked workers
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResolveStreamGoroutineHygiene: every way a stream ends — budget
// exhaustion, mid-stream cancellation, an already-expired deadline —
// must close the channel promptly and leave no resolving goroutine
// behind.
func TestResolveStreamGoroutineHygiene(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := minoaner.DefaultConfig()

	t.Run("max-pairs-exhaustion", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ch, err := minoaner.ResolveStream(context.Background(), b.KB1, b.KB2, cfg,
			minoaner.WithMaxPairs(2))
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for range ch {
			got++
		}
		if got != 2 {
			t.Fatalf("MaxPairs(2) emitted %d pairs", got)
		}
		waitForGoroutines(t, baseline)
	})

	t.Run("cancel-mid-stream", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		ch, err := minoaner.ResolveStream(ctx, b.KB1, b.KB2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := <-ch; !ok {
			t.Fatal("stream closed before the first pair")
		}
		cancel()
		// The channel must close promptly; a few in-flight pairs may
		// still arrive.
		closed := make(chan struct{})
		go func() {
			for range ch {
			}
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(5 * time.Second):
			t.Fatal("channel did not close after cancellation")
		}
		waitForGoroutines(t, baseline)
	})

	t.Run("expired-deadline", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		ch, err := minoaner.ResolveStream(ctx, b.KB1, b.KB2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		closed := make(chan struct{})
		go func() {
			for range ch {
			}
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(5 * time.Second):
			t.Fatal("channel did not close under an expired deadline")
		}
		waitForGoroutines(t, baseline)
	})

	t.Run("wall-clock-expiry", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		// A deadline that lands mid-resolution: whatever prefix made it
		// out is kept, the channel closes, nothing leaks.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		defer cancel()
		ch, err := minoaner.ResolveStream(ctx, b.KB1, b.KB2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan int)
		go func() {
			n := 0
			for range ch {
				n++
			}
			done <- n
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("channel did not close after the wall-clock budget expired")
		}
		// On a fast box the stream may drain before the deadline; either
		// way the deadline fires and the context reports it.
		<-ctx.Done()
		if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
			t.Fatalf("context should have expired, got %v", ctx.Err())
		}
		waitForGoroutines(t, baseline)
	})
}
