// Bibliography: matching a small, noisy bibliographic KB against a
// large, clean one (the Rexa-DBLP scenario). The example sweeps the θ
// parameter to show how H3 trades value evidence against neighbor
// (co-author) evidence.
//
//	go run ./examples/bibliography
package main

import (
	"fmt"
	"log"

	"minoaner"
)

func main() {
	bench, err := minoaner.GenerateBenchmark("Rexa-DBLP", 7, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: KB1=%d entities, KB2=%d entities, %d known matches\n",
		bench.Name, bench.KB1.Len(), bench.KB2.Len(), bench.GroundTruth.Len())
	fmt.Printf("KB1 stats: %+v\n", bench.KB1.Stats())
	fmt.Printf("KB2 stats: %+v\n", bench.KB2.Stats())

	fmt.Println("\nθ sweep (value weight in H3's rank aggregation):")
	for _, theta := range []float64{0.2, 0.4, 0.6, 0.8} {
		cfg := minoaner.DefaultConfig()
		cfg.Theta = theta
		res, err := minoaner.Resolve(bench.KB1, bench.KB2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  θ=%.1f  %s  (H1=%d H2=%d H3=%d)\n",
			theta, res.Evaluate(bench.GroundTruth), res.ByName, res.ByValue, res.ByRank)
	}
}
