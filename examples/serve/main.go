// Serve quick-start: build an index over two tiny KBs, round-trip it
// through a snapshot, start the HTTP resolution service in-process, and
// query it — the programmatic equivalent of
//
//	minoaner snapshot -kb1 a.nt -kb2 b.nt -o index.msnp
//	minoaner serve -index index.msnp
//	curl 'localhost:8080/resolve?uri=http://b/42'
//
// Run with:
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"minoaner"
)

const kbA = `
<http://a/joes> <http://va/name> "Joe's Diner" .
<http://a/joes> <http://va/phone> "555-1234" .
<http://a/central> <http://va/name> "Central Cafe" .
<http://a/central> <http://va/phone> "555-9876" .
`

const kbB = `
<http://b/42> <http://vb/title> "joe s diner" .
<http://b/42> <http://vb/telephone> "555 1234" .
<http://b/77> <http://vb/title> "central cafe" .
<http://b/77> <http://vb/telephone> "555 9876" .
`

func main() {
	kb1, err := minoaner.LoadKB("A", strings.NewReader(kbA))
	if err != nil {
		log.Fatal(err)
	}
	kb2, err := minoaner.LoadKB("B", strings.NewReader(kbB))
	if err != nil {
		log.Fatal(err)
	}

	// Build once: the index holds the KBs, the blocks, and the complete
	// match set.
	ix, err := minoaner.BuildIndex(kb1, kb2, minoaner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Persist and reload — in production this is a file written by
	// 'minoaner snapshot' and loaded by 'minoaner serve'.
	var snapshot bytes.Buffer
	if err := minoaner.SaveIndex(&snapshot, ix); err != nil {
		log.Fatal(err)
	}
	loaded, err := minoaner.LoadIndex(bytes.NewReader(snapshot.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes, %d matches\n", snapshot.Len(), len(loaded.Matches()))

	// Serve it. httptest stands in for http.ListenAndServe so the
	// example terminates; the handler is the same either way.
	srv := httptest.NewServer(minoaner.NewServer(loaded))
	defer srv.Close()

	get := func(path string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		fmt.Printf("GET %s\n%s\n", path, body)
	}
	get("/resolve?uri=http://b/42")

	// Resolve a brand-new description against the indexed side.
	delta := `<http://c/new> <http://vc/label> "joe s diner" .` + "\n" +
		`<http://c/new> <http://vc/tel> "555 1234" .` + "\n"
	resp, err := http.Post(srv.URL+"/delta?name=new-listings", "application/x-ntriples", strings.NewReader(delta))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("POST /delta\n%s\n", body)
}
