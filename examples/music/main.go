// Music: the heterogeneity stress test (the BBCmusic-DBpedia scenario).
// One KB is small and curated, the other has thousands of long-tail
// attributes and junk-laden literals. The example contrasts full
// MinoanER against ablated variants, demonstrating that neither names
// nor values alone survive this kind of heterogeneity — the combination
// (plus reciprocity) does.
//
//	go run ./examples/music
package main

import (
	"fmt"
	"log"

	"minoaner"
)

func main() {
	bench, err := minoaner.GenerateBenchmark("BBCmusic-DBpedia", 42, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	s1, s2 := bench.KB1.Stats(), bench.KB2.Stats()
	fmt.Printf("dataset %s: %d known matches\n", bench.Name, bench.GroundTruth.Len())
	fmt.Printf("  KB1: %5d entities, %4d attributes, %5d types, avg %5.1f tokens\n",
		s1.Entities, s1.Attributes, s1.Types, s1.AvgTokens)
	fmt.Printf("  KB2: %5d entities, %4d attributes, %5d types, avg %5.1f tokens  <- heterogeneous\n",
		s2.Entities, s2.Attributes, s2.Types, s2.AvgTokens)

	variants := []struct {
		name string
		mut  func(*minoaner.Config)
	}{
		{"full MinoanER", func(c *minoaner.Config) {}},
		{"without H1 (names)", func(c *minoaner.Config) { c.DisableH1 = true }},
		{"without H2 (values)", func(c *minoaner.Config) { c.DisableH2 = true }},
		{"without H3 (neighbors)", func(c *minoaner.Config) { c.DisableH3 = true }},
		{"without H4 (reciprocity)", func(c *minoaner.Config) { c.DisableH4 = true }},
	}
	fmt.Println("\nablation on the heterogeneous pair:")
	for _, v := range variants {
		cfg := minoaner.DefaultConfig()
		v.mut(&cfg)
		res, err := minoaner.Resolve(bench.KB1, bench.KB2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %s\n", v.name, res.Evaluate(bench.GroundTruth))
	}
}
