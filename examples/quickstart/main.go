// Quickstart: resolve two tiny in-memory knowledge bases with the
// default MinoanER configuration and print every match.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"minoaner"
)

// Two toy KBs describing the same three entities with different
// vocabularies: a restaurant, a cafe, and the city both are located in.
// Note that no attribute or relation name is shared between the KBs —
// MinoanER never looks at them.
const kbA = `
<http://a/joes> <http://va/name> "Joe's Diner" .
<http://a/joes> <http://va/phone> "555-1234" .
<http://a/joes> <http://va/locatedIn> <http://a/springfield> .
<http://a/central> <http://va/name> "Central Cafe" .
<http://a/central> <http://va/locatedIn> <http://a/springfield> .
<http://a/springfield> <http://va/cityName> "Springfield" .
`

const kbB = `
<http://b/42> <http://vb/title> "joe s diner" .
<http://b/42> <http://vb/telephone> "555 1234" .
<http://b/42> <http://vb/city> <http://b/900> .
<http://b/77> <http://vb/title> "central cafe" .
<http://b/77> <http://vb/city> <http://b/900> .
<http://b/900> <http://vb/label> "Springfield" .
`

func main() {
	kb1, err := minoaner.LoadKB("A", strings.NewReader(kbA))
	if err != nil {
		log.Fatal(err)
	}
	kb2, err := minoaner.LoadKB("B", strings.NewReader(kbB))
	if err != nil {
		log.Fatal(err)
	}

	res, err := minoaner.Resolve(kb1, kb2, minoaner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("resolved %d matches (names=%d values=%d ranks=%d):\n",
		len(res.Matches), res.ByName, res.ByValue, res.ByRank)
	for _, m := range res.Matches {
		fmt.Printf("  %-22s <-> %s\n", m.URI1, m.URI2)
	}
}
