// Restaurants: the paper's introductory scenario — deduplicating
// restaurant listings published by two different sources. This example
// generates the Restaurant benchmark stand-in, resolves it, and
// evaluates against the ground truth.
//
//	go run ./examples/restaurants
package main

import (
	"fmt"
	"log"

	"minoaner"
)

func main() {
	bench, err := minoaner.GenerateBenchmark("Restaurant", 42, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: KB1=%d entities, KB2=%d entities, %d known matches\n",
		bench.Name, bench.KB1.Len(), bench.KB2.Len(), bench.GroundTruth.Len())

	res, err := minoaner.Resolve(bench.KB1, bench.KB2, minoaner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches: %d (by name %d, by values %d, by rank aggregation %d; %d discarded by reciprocity)\n",
		len(res.Matches), res.ByName, res.ByValue, res.ByRank, res.DiscardedByReciprocity)
	fmt.Printf("blocks: %d name blocks (%d comparisons), %d token blocks (%d comparisons)\n",
		res.NameBlocks, res.NameComparisons, res.TokenBlocks, res.TokenComparisons)
	fmt.Printf("quality: %s\n", res.Evaluate(bench.GroundTruth))

	// Show a few resolved pairs.
	fmt.Println("sample matches:")
	for i, m := range res.Matches {
		if i == 5 {
			break
		}
		fmt.Printf("  %s <-> %s\n", m.URI1, m.URI2)
	}
}
