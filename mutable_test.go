package minoaner_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"minoaner"
)

// ntDoc is an N-Triples document manipulated at entity granularity —
// the triple-level reference a mutable index is measured against.
type ntDoc struct {
	lines []string
}

func docFromKB(t *testing.T, write func(io.Writer) error) *ntDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	return &ntDoc{lines: lines}
}

// subjectOf extracts the subject token of one N-Triples line.
func subjectOf(line string) string {
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return line
	}
	return line[:i]
}

// subjectToken renders a URI as its N-Triples subject token.
func subjectToken(uri string) string {
	if strings.HasPrefix(uri, "_:") {
		return uri
	}
	return "<" + uri + ">"
}

func (d *ntDoc) linesOf(uri string) []string {
	tok := subjectToken(uri)
	var out []string
	for _, l := range d.lines {
		if subjectOf(l) == tok {
			out = append(out, l)
		}
	}
	return out
}

// remove drops all triples of the given subjects.
func (d *ntDoc) remove(uris ...string) {
	drop := map[string]bool{}
	for _, u := range uris {
		drop[subjectToken(u)] = true
	}
	var kept []string
	for _, l := range d.lines {
		if !drop[subjectOf(l)] {
			kept = append(kept, l)
		}
	}
	d.lines = kept
}

// upsert replaces the subjects covered by delta with delta's lines.
func (d *ntDoc) upsert(delta []string) {
	subjects := map[string]bool{}
	for _, l := range delta {
		subjects[subjectOf(l)] = true
	}
	var kept []string
	for _, l := range d.lines {
		if !subjects[subjectOf(l)] {
			kept = append(kept, l)
		}
	}
	d.lines = append(kept, delta...)
}

func (d *ntDoc) text() string { return strings.Join(d.lines, "\n") + "\n" }

func (d *ntDoc) kb(t *testing.T, name string) *minoaner.KB {
	t.Helper()
	k, err := minoaner.LoadKB(name, strings.NewReader(d.text()))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// mutationStep applies one random mutation to the doc and mirrors it
// on the index. Returns false when the roll produced a no-op.
func mutationStep(t *testing.T, rng *rand.Rand, ix *minoaner.Index, side int, d *ntDoc, cur *minoaner.KB, round int) bool {
	t.Helper()
	uris := cur.URIs()
	switch rng.Intn(5) {
	case 0: // delete 1-2 entities
		del := []string{uris[rng.Intn(len(uris))]}
		if rng.Intn(2) == 0 {
			del = append(del, uris[rng.Intn(len(uris))])
		}
		if err := ix.Delete(context.Background(), side, del...); err != nil {
			t.Fatalf("round %d: delete: %v", round, err)
		}
		d.remove(del...)
	case 1: // insert a brand-new entity linking to an existing one
		subj := fmt.Sprintf("<http://mut/side%d/new-%d-%d>", side, round, rng.Intn(1000))
		delta := []string{
			fmt.Sprintf("%s <http://mut/name> \"fresh description %d omega\" .", subj, round),
			fmt.Sprintf("%s <http://mut/link> %s .", subj, subjectToken(uris[rng.Intn(len(uris))])),
		}
		deltaKB, err := minoaner.LoadKB("delta", strings.NewReader(strings.Join(delta, "\n")))
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Upsert(context.Background(), side, deltaKB); err != nil {
			t.Fatalf("round %d: insert: %v", round, err)
		}
		d.upsert(delta)
	default: // replace an existing entity with a perturbed description
		uri := uris[rng.Intn(len(uris))]
		delta := d.linesOf(uri)
		if len(delta) == 0 {
			return false
		}
		if rng.Intn(2) == 0 && len(delta) > 1 {
			delta = delta[:len(delta)-1] // drop one triple
		}
		delta = append(delta, fmt.Sprintf("%s <http://mut/extra> \"perturb %d %d\" .",
			subjectToken(uri), round, rng.Intn(3)))
		deltaKB, err := minoaner.LoadKB("delta", strings.NewReader(strings.Join(delta, "\n")))
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Upsert(context.Background(), side, deltaKB); err != nil {
			t.Fatalf("round %d: upsert: %v", round, err)
		}
		d.upsert(delta)
	}
	return true
}

// assertRebuildEquivalent compares the mutated index against a
// from-scratch BuildIndex over the mutated documents: matches, stats,
// point queries, and the delta path.
func assertRebuildEquivalent(t *testing.T, label string, ix *minoaner.Index, d1, d2 *ntDoc, cfg minoaner.Config) {
	t.Helper()
	kb1, kb2 := d1.kb(t, "kb1"), d2.kb(t, "kb2")
	fresh, err := minoaner.BuildIndex(kb1, kb2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ix.Matches(), fresh.Matches(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: matches diverge from rebuild (%d vs %d)", label, len(got), len(want))
	}
	gs, ws := ix.Stats(), fresh.Stats()
	ws.Epoch, ws.JournalLength = gs.Epoch, gs.JournalLength // provenance differs by design
	ws.Shards = gs.Shards                                   // parallel layout differs by design
	if gs != ws {
		t.Fatalf("%s: stats diverge from rebuild:\n got %+v\nwant %+v", label, gs, ws)
	}

	// Point queries over a sample of both KBs' URIs.
	var sample []string
	for _, uris := range [][]string{kb1.URIs(), kb2.URIs()} {
		for i := 0; i < len(uris); i += 1 + len(uris)/17 {
			sample = append(sample, uris[i])
		}
	}
	if !reflect.DeepEqual(ix.Query(sample...), fresh.Query(sample...)) {
		t.Fatalf("%s: Query diverges from rebuild", label)
	}

	// The delta path probes the patched substrate; the rebuild freezes
	// its own. Both must produce identical matches.
	uris2 := kb2.URIs()
	deltaKB, err := minoaner.LoadKB("qdelta", strings.NewReader(strings.Join(d2.linesOf(uris2[len(uris2)/2]), "\n")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.QueryKBFast(context.Background(), deltaKB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.QueryKBFast(context.Background(), deltaKB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("%s: QueryKB diverges from rebuild", label)
	}
}

// TestMutableIndexRebuildEquivalence is the headline invariant: after
// any sequence of upserts and deletes (on either side), the mutated
// index answers bit-identically to a from-scratch BuildIndex over the
// mutated KBs — on all four benchmarks, at workers 1/2/4/8.
func TestMutableIndexRebuildEquivalence(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4, 8} {
				workers := workers
				t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
					b, err := minoaner.GenerateBenchmark(name, 42, 0.08)
					if err != nil {
						t.Fatal(err)
					}
					cfg := minoaner.DefaultConfig()
					cfg.Workers = workers
					ix, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !ix.Mutable() {
						t.Fatal("freshly built index not mutable")
					}
					d1 := docFromKB(t, b.WriteKB1)
					d2 := docFromKB(t, b.WriteKB2)

					rng := rand.New(rand.NewSource(int64(workers) * 77))
					applied := 0
					for round := 0; applied < 6 && round < 20; round++ {
						side, doc, cur := 2, d2, ix.KB2()
						if rng.Intn(3) == 0 {
							side, doc, cur = 1, d1, ix.KB1()
						}
						if mutationStep(t, rng, ix, side, doc, cur, round) {
							applied++
						}
					}
					if got := ix.Epoch(); got < uint64(applied) {
						t.Fatalf("epoch %d after %d mutations", got, applied)
					}
					if got := len(ix.Journal()); got != int(ix.Epoch()) {
						t.Fatalf("journal length %d, epoch %d", got, ix.Epoch())
					}
					assertRebuildEquivalent(t, fmt.Sprintf("%s workers=%d", name, workers), ix, d1, d2, cfg)

					// Compact keeps the resolution state intact.
					ix.Compact()
					if len(ix.Journal()) != 0 {
						t.Fatal("compact left journal entries")
					}
					assertRebuildEquivalent(t, "post-compact", ix, d1, d2, cfg)
				})
			}
		})
	}
}

// TestMutableIndexConcurrentReaders hammers one mutable index with 16
// reader goroutines while a mutation storm runs — the lock-free epoch
// swap must never tear a response (run under -race).
func TestMutableIndexConcurrentReaders(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := minoaner.DefaultConfig()
	cfg.Workers = 2
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix.Prepare()
	d2 := docFromKB(t, b.WriteKB2)
	uris2 := ix.KB2().URIs()
	deltaKB, err := minoaner.LoadKB("qdelta", strings.NewReader(strings.Join(d2.linesOf(uris2[0]), "\n")))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					res := ix.Query(uris2[(g*31+i)%len(uris2)])
					if len(res) != 1 {
						t.Errorf("query returned %d results", len(res))
						return
					}
				case 1:
					if _, err := ix.QueryKB(context.Background(), deltaKB); err != nil {
						t.Errorf("QueryKB: %v", err)
						return
					}
				default:
					_ = ix.Stats()
					_ = ix.Matches()
				}
			}
		}(g)
	}

	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 12; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
		if round == 6 {
			ix.Compact()
		}
	}
	close(stop)
	wg.Wait()
}

// TestMutableIndexSnapshotRoundTrip: a mutated index persists — the
// snapshot carries the mutated state plus the journal, reloads
// bit-identically, and the reloaded index keeps accepting mutations.
func TestMutableIndexSnapshotRoundTrip(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 23, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	cfg := minoaner.DefaultConfig()
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1 := docFromKB(t, b.WriteKB1)
	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 4; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}

	var first bytes.Buffer
	if err := minoaner.SaveIndex(&first, ix); err != nil {
		t.Fatal(err)
	}
	back, err := minoaner.LoadIndex(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch() != ix.Epoch() {
		t.Fatalf("epoch %d after reload, want %d", back.Epoch(), ix.Epoch())
	}
	if !reflect.DeepEqual(back.Journal(), ix.Journal()) {
		t.Fatal("journal diverges after reload")
	}
	if !reflect.DeepEqual(back.Matches(), ix.Matches()) {
		t.Fatal("matches diverge after reload")
	}
	if !back.Mutable() {
		t.Fatal("reloaded index lost mutability")
	}
	var second bytes.Buffer
	if err := minoaner.SaveIndex(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("snapshot not bit-identical after reload (%d vs %d bytes)", first.Len(), second.Len())
	}

	// The reloaded index absorbs further mutations (priming its
	// substrate from the snapshot's collections) and stays
	// rebuild-equivalent.
	for round := 4; round < 7; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}
	// Replay the same pseudo-random steps on the reloaded index.
	rng2 := rand.New(rand.NewSource(9))
	d2b := docFromKB(t, b.WriteKB2)
	for round := 0; round < 4; round++ { // fast-forward the stream
		mutationStepNoIndex(t, rng2, d2b, round)
	}
	for round := 4; round < 7; round++ {
		mutationStep(t, rng2, back, 2, d2b, back.KB2(), round)
	}
	if !reflect.DeepEqual(back.Matches(), ix.Matches()) {
		t.Fatal("reloaded index diverges from the original after further mutations")
	}
	assertRebuildEquivalent(t, "reloaded", back, d1, d2, cfg)
}

// mutationStepNoIndex replays mutationStep's randomness against the
// doc only (to fast-forward a deterministic stream).
func mutationStepNoIndex(t *testing.T, rng *rand.Rand, d *ntDoc, round int) {
	t.Helper()
	k := d.kb(t, "tmp")
	uris := k.URIs()
	switch rng.Intn(5) {
	case 0:
		del := []string{uris[rng.Intn(len(uris))]}
		if rng.Intn(2) == 0 {
			del = append(del, uris[rng.Intn(len(uris))])
		}
		d.remove(del...)
	case 1:
		subj := fmt.Sprintf("<http://mut/side2/new-%d-%d>", round, rng.Intn(1000))
		d.upsert([]string{
			fmt.Sprintf("%s <http://mut/name> \"fresh description %d omega\" .", subj, round),
			fmt.Sprintf("%s <http://mut/link> %s .", subj, subjectToken(uris[rng.Intn(len(uris))])),
		})
	default:
		uri := uris[rng.Intn(len(uris))]
		delta := d.linesOf(uri)
		if len(delta) == 0 {
			return
		}
		if rng.Intn(2) == 0 && len(delta) > 1 {
			delta = delta[:len(delta)-1]
		}
		delta = append(delta, fmt.Sprintf("%s <http://mut/extra> \"perturb %d %d\" .",
			subjectToken(uri), round, rng.Intn(3)))
		d.upsert(delta)
	}
}

// TestUpsertIdenticalIsNoOp: re-upserting a description identical to
// the indexed one must not bump the epoch or grow the journal —
// idempotent re-sync traffic is free.
func TestUpsertIdenticalIsNoOp(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 13, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2 := docFromKB(t, b.WriteKB2)
	uri := ix.KB2().URIs()[3]
	delta, err := minoaner.LoadKB("delta", strings.NewReader(strings.Join(d2.linesOf(uri), "\n")))
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Matches()
	if err := ix.Upsert(context.Background(), 2, delta); err != nil {
		t.Fatal(err)
	}
	if ix.Epoch() != 0 || len(ix.Journal()) != 0 {
		t.Fatalf("identical upsert bumped epoch to %d (journal %d)", ix.Epoch(), len(ix.Journal()))
	}
	if !reflect.DeepEqual(ix.Matches(), before) {
		t.Fatal("identical upsert changed matches")
	}
}

// TestImmutableIndexRejectsMutations: stripped KBs build a read-only
// index that rejects Upsert/Delete with ErrNotMutable (the situation
// of pre-mutability snapshots).
func TestImmutableIndexRejectsMutations(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := minoaner.BuildIndex(b.KB1.WithoutSources(), b.KB2.WithoutSources(), minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Mutable() {
		t.Fatal("index over stripped KBs claims mutability")
	}
	if err := ix.Delete(context.Background(), 2, b.KB2.URIs()[0]); !errors.Is(err, minoaner.ErrNotMutable) {
		t.Fatalf("Delete err = %v, want ErrNotMutable", err)
	}

	// Its snapshot (the pre-mutability layout, no sources, no journal)
	// still round-trips and loads as read-only.
	var buf bytes.Buffer
	if err := minoaner.SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	back, err := minoaner.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Mutable() {
		t.Fatal("reloaded stripped index claims mutability")
	}
	if !reflect.DeepEqual(back.Matches(), ix.Matches()) {
		t.Fatal("matches diverge after reload")
	}
}

// TestMutableSnapshotCorruption: the journal section (and everything
// else) is checksummed — bit flips and truncations anywhere in a
// mutated snapshot are rejected, including flips on the optional
// sections' ID bytes (caught by the config section's inventory).
func TestMutableSnapshotCorruption(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 3; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}
	var buf bytes.Buffer
	if err := minoaner.SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	flip := func(off int) {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x10
		if _, err := minoaner.LoadIndex(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at offset %d accepted", off)
		}
	}
	// Sample the whole file, then sweep the tail densely — the journal
	// section sits at the end, so every byte of it (payload, checksum,
	// and its section ID) gets hit.
	for off := 5; off < len(data); off += 1 + len(data)/223 {
		flip(off)
	}
	tail := len(data) - 2048
	if tail < 5 {
		tail = 5
	}
	for off := tail; off < len(data); off++ {
		flip(off)
	}
	for _, cut := range []int{0, 4, 9, len(data) / 2, len(data) - 3} {
		if _, err := minoaner.LoadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
