package minoaner_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"minoaner"
)

// newMutableServer builds a mutable index over a benchmark and serves
// it with mutations enabled.
func newMutableServer(t *testing.T) (*minoaner.Benchmark, *minoaner.Index, *httptest.Server, *ntDoc, *ntDoc) {
	t.Helper()
	b, err := minoaner.GenerateBenchmark("Restaurant", 31, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(minoaner.NewServer(ix, minoaner.WithMutations()))
	t.Cleanup(srv.Close)
	return b, ix, srv, docFromKB(t, b.WriteKB1), docFromKB(t, b.WriteKB2)
}

func postBody(t *testing.T, url, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// resolveBody fetches /resolve output for a set of URIs.
func resolveBody(t *testing.T, base string, uris []string) string {
	t.Helper()
	payload, _ := json.Marshal(map[string][]string{"uris": uris})
	resp, data := postBody(t, base+"/resolve", "application/json", string(payload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/resolve status %d: %s", resp.StatusCode, data)
	}
	return string(data)
}

// TestServeMutations drives scripted upserts and deletes over HTTP and
// asserts the served /resolve output equals a fresh rebuild's — the
// serve-layer face of the rebuild-equivalence invariant.
func TestServeMutations(t *testing.T) {
	_, ix, srv, d1, d2 := newMutableServer(t)
	uris2 := ix.KB2().URIs()

	// Upsert: perturb an existing entity.
	target := uris2[len(uris2)/3]
	delta := append(d2.linesOf(target),
		fmt.Sprintf("%s <http://mut/extra> \"served mutation alpha\" .", subjectToken(target)))
	resp, data := postBody(t, srv.URL+"/upsert?side=2", "application/n-triples", strings.Join(delta, "\n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/upsert status %d: %s", resp.StatusCode, data)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("/upsert Cache-Control = %q, want no-store", cc)
	}
	var mut struct {
		Epoch    uint64 `json:"epoch"`
		Side     int    `json:"side"`
		Subjects int    `json:"subjects"`
	}
	if err := json.Unmarshal(data, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 1 || mut.Side != 2 || mut.Subjects != 1 {
		t.Fatalf("upsert response %+v", mut)
	}
	d2.upsert(delta)

	// Delete another entity.
	victim := uris2[len(uris2)/5]
	payload, _ := json.Marshal(map[string]any{"side": 2, "uris": []string{victim}})
	resp, data = postBody(t, srv.URL+"/delete", "application/json", string(payload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/delete status %d: %s", resp.StatusCode, data)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("/delete Cache-Control = %q, want no-store", cc)
	}
	d2.remove(victim)

	// The served output now equals a fresh rebuild over the mutated
	// docs, URI by URI.
	fresh, err := minoaner.BuildIndex(d1.kb(t, "kb1"), d2.kb(t, "kb2"), minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	freshSrv := httptest.NewServer(minoaner.NewServer(fresh))
	defer freshSrv.Close()
	sample := append([]string{target, victim}, uris2[:20]...)
	if got, want := resolveBody(t, srv.URL, sample), resolveBody(t, freshSrv.URL, sample); got != want {
		t.Fatalf("served /resolve diverges from fresh rebuild:\n got %s\nwant %s", got, want)
	}

	// /stats reflects the epoch, journal, and traffic counters.
	var stats struct {
		Epoch         uint64 `json:"epoch"`
		JournalLength int    `json:"journal_length"`
		Mutable       bool   `json:"mutable"`
		Endpoints     map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"endpoints"`
	}
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if cc := sresp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("mutable /stats Cache-Control = %q, want no-store", cc)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 2 || stats.JournalLength != 2 || !stats.Mutable {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Endpoints["upsert"].Requests != 1 || stats.Endpoints["delete"].Requests != 1 {
		t.Fatalf("endpoint counters = %+v", stats.Endpoints)
	}
	if stats.Endpoints["resolve"].Requests == 0 {
		t.Fatalf("resolve counter missing: %+v", stats.Endpoints)
	}
}

// TestServeMutationValidation covers the endpoints' error paths.
func TestServeMutationValidation(t *testing.T) {
	_, _, srv, _, _ := newMutableServer(t)

	cases := []struct {
		name   string
		method string
		url    string
		body   string
		status int
	}{
		{"upsert bad side", "POST", "/upsert?side=3", "<http://a> <http://b> \"c\" .", http.StatusBadRequest},
		{"upsert empty", "POST", "/upsert", "", http.StatusBadRequest},
		{"upsert garbage", "POST", "/upsert", "this is not n-triples", http.StatusBadRequest},
		{"delete no uris", "POST", "/delete", `{"side":2,"uris":[]}`, http.StatusBadRequest},
		{"delete bad side", "POST", "/delete", `{"side":9,"uris":["http://x"]}`, http.StatusBadRequest},
		{"delete bad json", "POST", "/delete", "{", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postBody(t, srv.URL+tc.url, "application/octet-stream", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, data)
			}
			if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
				t.Fatalf("Cache-Control = %q, want no-store", cc)
			}
		})
	}

	// Deleting absent URIs succeeds as a no-op without bumping the
	// epoch.
	resp, data := postBody(t, srv.URL+"/delete", "application/json", `{"side":2,"uris":["http://nowhere/x"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-op delete status %d: %s", resp.StatusCode, data)
	}
	var mut struct {
		Epoch uint64 `json:"epoch"`
		NoOp  bool   `json:"no_op"`
	}
	if err := json.Unmarshal(data, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 0 || !mut.NoOp {
		t.Fatalf("no-op delete response %+v", mut)
	}
}

// TestServeReadOnlyRejectsMutations: without WithMutations the
// endpoints 403; over an immutable snapshot they 409.
func TestServeReadOnlyRejectsMutations(t *testing.T) {
	_, _, srv := newTestServer(t) // read-only server
	resp, _ := postBody(t, srv.URL+"/delete", "application/json", `{"side":2,"uris":["http://x"]}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only /delete status %d, want 403", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}

	b, err := minoaner.GenerateBenchmark("Restaurant", 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := minoaner.BuildIndex(b.KB1.WithoutSources(), b.KB2.WithoutSources(), minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(minoaner.NewServer(ix, minoaner.WithMutations()))
	defer srv2.Close()
	resp, _ = postBody(t, srv2.URL+"/delete", "application/json", `{"side":2,"uris":["http://x"]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("immutable /delete status %d, want 409", resp.StatusCode)
	}
}

// TestServeNoStoreOnErrors: every error-shaped response — unknown
// paths, wrong methods, handler errors — carries Cache-Control:
// no-store so intermediaries never cache stale failures.
func TestServeNoStoreOnErrors(t *testing.T) {
	_, _, srv := newTestServer(t)

	check := func(label string, resp *http.Response) {
		t.Helper()
		if resp.StatusCode < 400 {
			t.Fatalf("%s: status %d, want an error", label, resp.StatusCode)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("%s: Cache-Control = %q, want no-store", label, cc)
		}
	}

	resp, err := http.Get(srv.URL + "/no-such-endpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	check("404", resp)

	req, err := http.NewRequest(http.MethodPut, srv.URL+"/resolve", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	check("405", resp)

	resp, err = http.Get(srv.URL + "/resolve") // no URIs -> writeError
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	check("writeError", resp)

	// Success responses on read-only lookups stay cacheable (no
	// header).
	var buf bytes.Buffer
	_ = buf
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "" {
		t.Fatalf("healthz Cache-Control = %q, want unset", cc)
	}
}

// TestServeConcurrentMutationsAndReads: HTTP readers race an HTTP
// mutation storm; every response must parse and the final state must
// equal the reference rebuild (run under -race).
func TestServeConcurrentMutationsAndReads(t *testing.T) {
	_, ix, srv, d1, d2 := newMutableServer(t)
	uris2 := ix.KB2().URIs()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			var r resolveResponse
			code := getJSON(t, srv.URL+"/resolve?uri="+uris2[i%len(uris2)], &r)
			if code != http.StatusOK {
				t.Errorf("resolve status %d", code)
				return
			}
		}
	}()
	for round := 0; round < 6; round++ {
		target := uris2[(round*7)%len(uris2)]
		delta := append(d2.linesOf(target),
			fmt.Sprintf("%s <http://mut/extra> \"storm %d\" .", subjectToken(target), round))
		resp, data := postBody(t, srv.URL+"/upsert?side=2", "application/n-triples", strings.Join(delta, "\n"))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("storm upsert %d: status %d: %s", round, resp.StatusCode, data)
		}
		d2.upsert(delta)
	}
	<-done

	fresh, err := minoaner.BuildIndex(d1.kb(t, "kb1"), d2.kb(t, "kb2"), minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ix.Matches(), fresh.Matches()) {
		t.Fatal("post-storm matches diverge from rebuild")
	}
}
