package minoaner

import (
	"errors"
	"fmt"
	"os"

	"minoaner/internal/binio"
	"minoaner/internal/kb"
)

// SnapshotKBInfo summarizes one embedded KB of a snapshot.
type SnapshotKBInfo struct {
	Name     string
	Entities int
	Triples  int
	// Sources reports whether the KB retains its source triples (the
	// precondition for mutating the index).
	Sources bool
}

// SnapshotInfo is InspectIndexFile's description of a snapshot file.
type SnapshotInfo struct {
	Size   int64
	Config Config

	KB1, KB2 SnapshotKBInfo

	NameBlocks, TokenBlocks           int
	NameComparisons, TokenComparisons int64
	PurgedBlocks                      int

	Matches, ByName, ByValue, ByRank int
	DiscardedByH4                    int

	// Prepared reports whether the snapshot persists the frozen delta
	// substrate (section 8).
	Prepared bool
	// Shards is the persisted shard count (1 = unsharded).
	Shards int

	Epoch          uint64
	JournalEntries int
}

// Mutable reports whether an index loaded from the snapshot accepts
// Upsert/Delete: both KBs must retain their source triples.
func (si *SnapshotInfo) Mutable() bool { return si.KB1.Sources && si.KB2.Sources }

// InspectIndexFile describes a snapshot from its section directory
// without loading the index: KB bulk is never decoded (their sectioned
// headers answer name/size questions in O(header)), only the small
// config/stats/matches/journal/sharding sections are read. The work is
// proportional to the directory and those sections, not to the KBs —
// inspecting a multi-gigabyte snapshot costs about the same as a tiny
// one.
func InspectIndexFile(path string) (*SnapshotInfo, error) {
	m, err := binio.OpenMap(path, snapshotMagic, snapshotVersion)
	if err != nil {
		if errors.Is(err, binio.ErrCorrupt) {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		return nil, err
	}
	defer m.Close()
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	si := &SnapshotInfo{Size: st.Size(), Shards: 1, Prepared: m.Has(snapPrepared)}

	b, err := m.Reader(snapConfig)
	if err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrSnapshotCorrupt, err)
	}
	si.Config = readConfig(b)
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrSnapshotCorrupt, err)
	}

	inspectKB := func(id uint64, name string) (SnapshotKBInfo, error) {
		raw, ok := m.Raw(id)
		if !ok {
			return SnapshotKBInfo{}, fmt.Errorf("%w: missing %s section", ErrSnapshotCorrupt, name)
		}
		if !kb.LazyCapable(raw) {
			// Pre-sectioned KB images decode eagerly; their snapshot
			// section's checksum stands in for the missing inner ones.
			if raw, err = m.Section(id); err != nil {
				return SnapshotKBInfo{}, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
			}
		}
		info, err := kb.InspectBinary(raw)
		if err != nil {
			return SnapshotKBInfo{}, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
		}
		return SnapshotKBInfo{Name: info.Name, Entities: info.Entities, Triples: info.Triples, Sources: info.HasSources}, nil
	}
	if si.KB1, err = inspectKB(snapKB1, "kb1"); err != nil {
		return nil, err
	}
	if si.KB2, err = inspectKB(snapKB2, "kb2"); err != nil {
		return nil, err
	}

	if b, err = m.Reader(snapStats); err != nil {
		return nil, fmt.Errorf("%w: stats: %v", ErrSnapshotCorrupt, err)
	}
	b.Int() // purge cutoff 1
	b.Int() // purge cutoff 2
	si.PurgedBlocks = b.Int()
	b.Uvarint() // purged comparisons
	si.NameBlocks = b.Int()
	si.TokenBlocks = b.Int()
	si.NameComparisons = int64(b.Uvarint())
	si.TokenComparisons = int64(b.Uvarint())
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: stats: %v", ErrSnapshotCorrupt, err)
	}

	if b, err = m.Reader(snapMatches); err != nil {
		return nil, fmt.Errorf("%w: matches: %v", ErrSnapshotCorrupt, err)
	}
	for _, dst := range []*int{&si.ByName, &si.ByValue, &si.ByRank, &si.Matches} {
		*dst = skimPairs(b)
	}
	si.DiscardedByH4 = b.Int()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: matches: %v", ErrSnapshotCorrupt, err)
	}

	if m.Has(snapJournal) {
		// Only the leading epoch number and entry count; the entries
		// themselves stay unread.
		jb, err := m.Reader(snapJournal)
		if err != nil {
			return nil, fmt.Errorf("%w: journal: %v", ErrSnapshotCorrupt, err)
		}
		si.Epoch = jb.Uvarint()
		si.JournalEntries = jb.Int()
		if err := jb.Err(); err != nil {
			return nil, fmt.Errorf("%w: journal: %v", ErrSnapshotCorrupt, err)
		}
	}
	if m.Has(snapSharding) {
		sb, err := m.Reader(snapSharding)
		if err != nil {
			return nil, fmt.Errorf("%w: sharding: %v", ErrSnapshotCorrupt, err)
		}
		k := sb.Int()
		if sb.Err() == nil && (k < 1 || k > 1<<16) {
			sb.Fail("shard count %d out of range", k)
		}
		if err := sb.Err(); err != nil {
			return nil, fmt.Errorf("%w: sharding: %v", ErrSnapshotCorrupt, err)
		}
		si.Shards = k
	}
	return si, nil
}

// skimPairs counts one pair list without materializing it.
func skimPairs(b *binio.Reader) int {
	n := b.Int()
	if b.Err() == nil && n > 1<<28 {
		b.Fail("absurd pair count %d", n)
		return 0
	}
	for i := 0; i < n && b.Err() == nil; i++ {
		b.Uvarint()
		b.Uvarint()
	}
	return n
}
