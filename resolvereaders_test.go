package minoaner_test

// End-to-end equivalence guard for the streaming ingest path: resolving
// from raw N-Triples sources through ResolveReaders must produce
// exactly the matches of loading the KBs and calling ResolveContext, on
// every synthetic benchmark and at worker counts 1, 2, 4, 8 — and the
// stage timings must surface the ingest and kb-build stages.

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"minoaner"
)

func TestResolveReadersMatchesResolveAcrossWorkers(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		bench, err := minoaner.GenerateBenchmark(name, 42, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		var nt1, nt2 bytes.Buffer
		if err := bench.WriteKB1(&nt1); err != nil {
			t.Fatal(err)
		}
		if err := bench.WriteKB2(&nt2); err != nil {
			t.Fatal(err)
		}

		cfg := minoaner.DefaultConfig()
		want, err := minoaner.Resolve(bench.KB1, bench.KB2, cfg)
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 2, 4, 8} {
			cfg := minoaner.DefaultConfig()
			cfg.Workers = workers
			got, err := minoaner.ResolveReaders(context.Background(),
				minoaner.Source{Name: "KB1", R: bytes.NewReader(nt1.Bytes())},
				minoaner.Source{Name: "KB2", R: bytes.NewReader(nt2.Bytes())},
				cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				t.Errorf("%s workers=%d: ResolveReaders matches diverge from Resolve (%d vs %d)",
					name, workers, len(got.Matches), len(want.Matches))
			}
			stages := make(map[string]bool)
			for _, s := range got.StageTimings {
				stages[s.Stage] = true
			}
			if !stages["ingest"] || !stages["kb-build"] {
				t.Errorf("%s: ingest stages missing from timings: %v", name, got.StageTimings)
			}
		}
	}
}

func TestResolveReadersLenientCountsSkips(t *testing.T) {
	kb1 := `<http://e/a> <http://v/name> "Alpha Restaurant" .
garbage line here
<http://e/b> <http://v/name> "Beta Bistro" .
`
	kb2 := `<http://f/a> <http://v/title> "Alpha Restaurant" .
<http://f/b> <http://v/title> "Beta Bistro" .
`
	res, err := minoaner.ResolveReaders(context.Background(),
		minoaner.Source{Name: "KB1", R: strings.NewReader(kb1), Lenient: true},
		minoaner.Source{Name: "KB2", R: strings.NewReader(kb2)},
		minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedLines1 != 1 || res.SkippedLines2 != 0 {
		t.Errorf("skipped = (%d,%d), want (1,0)", res.SkippedLines1, res.SkippedLines2)
	}
}
