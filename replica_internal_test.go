package minoaner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// flushRecorder wraps httptest.ResponseRecorder counting Flush calls —
// the regression fixture for statusWriter's flusher passthrough.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// plainRecorder deliberately does NOT implement http.Flusher.
type plainRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (p *plainRecorder) Header() http.Header         { return p.header }
func (p *plainRecorder) WriteHeader(code int)        { p.status = code }
func (p *plainRecorder) Write(b []byte) (int, error) { return p.body.Write(b) }

func internalTestIndex(t *testing.T) *Index {
	t.Helper()
	b, err := GenerateBenchmark("Restaurant", 19, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(b.KB1, b.KB2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// mutateInternal applies n scripted upserts so the journal has
// replayable entries without importing the external test helpers.
func mutateInternal(t *testing.T, ix *Index, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		lines := fmt.Sprintf("<http://int/e%d> <http://int/name> \"entity %d omega\" .\n<http://int/e%d> <http://int/kind> \"internal\" .",
			i, i, i)
		delta, err := LoadKB("delta", strings.NewReader(lines))
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Upsert(context.Background(), 2, delta); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatusWriterForwardsFlush is the regression test for the
// statusWriter bug: the instrumentation wrapper used to hide the
// underlying http.Flusher, so streamed responses (NDJSON journal
// tails) buffered until the handler returned.
func TestStatusWriterForwardsFlush(t *testing.T) {
	ix := internalTestIndex(t)
	mutateInternal(t, ix, 2)
	srv := NewServer(ix)

	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/journal?since=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/journal status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.flushes < 2 {
		t.Fatalf("statusWriter forwarded %d flushes, want one per journal entry (>= 2)", rec.flushes)
	}

	// http.ResponseController reaches the flusher through Unwrap too.
	rec2 := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	sw := &statusWriter{ResponseWriter: rec2}
	if err := http.NewResponseController(sw).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush through statusWriter: %v", err)
	}
	if rec2.flushes != 1 {
		t.Fatalf("ResponseController flushed %d times, want 1", rec2.flushes)
	}
	if sw.status != http.StatusOK {
		t.Fatalf("Flush before WriteHeader recorded status %d, want 200", sw.status)
	}

	// A non-flushing ResponseWriter must not panic the handler.
	plain := &plainRecorder{header: http.Header{}}
	srv.ServeHTTP(plain, httptest.NewRequest("GET", "/journal?since=0", nil))
	if plain.status != http.StatusOK {
		t.Fatalf("/journal over non-flusher status %d", plain.status)
	}
}

// TestSaveIndexFileAtomic is the regression test for the truncate-in-
// place bug: a failing save must leave the previous snapshot readable,
// a successful one replaces it with no temp files left behind.
func TestSaveIndexFileAtomic(t *testing.T) {
	ix := internalTestIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.msnp")
	if err := SaveIndexFile(path, ix); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A write failure mid-save (simulated through the same atomic
	// helper SaveIndexFile uses) leaves the old bytes intact.
	boom := errors.New("disk full")
	if err := writeFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage")); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("writeFileAtomic err = %v, want the write error", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, good) {
		t.Fatal("failed save corrupted the existing snapshot")
	}
	if _, err := LoadIndexFile(path); err != nil {
		t.Fatalf("snapshot unreadable after failed save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover temp files after failed save: %v", entries)
	}

	// A successful save replaces the file.
	mutateInternal(t, ix, 1)
	if err := SaveIndexFile(path, ix); err != nil {
		t.Fatal(err)
	}
	replaced, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(replaced, good) {
		t.Fatal("successful save did not replace the snapshot")
	}
	back, err := LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch() != ix.Epoch() {
		t.Fatalf("reloaded epoch %d, want %d", back.Epoch(), ix.Epoch())
	}
}

// TestEnsureMutatorWrapsCause is the regression test for the swallowed
// store error: mutating an index whose KBs cannot back a store must
// keep errors.Is(err, ErrNotMutable) working AND carry the cause.
func TestEnsureMutatorWrapsCause(t *testing.T) {
	b, err := GenerateBenchmark("Restaurant", 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(b.KB1, b.KB2.WithoutSources(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delta, err := LoadKB("delta", strings.NewReader("<http://x/a> <http://x/n> \"v\" ."))
	if err != nil {
		t.Fatal(err)
	}
	err = ix.Upsert(context.Background(), 2, delta)
	if !errors.Is(err, ErrNotMutable) {
		t.Fatalf("Upsert err = %v, want ErrNotMutable", err)
	}
	if !strings.Contains(err.Error(), "second KB") {
		t.Fatalf("error names no KB: %v", err)
	}
	if !strings.Contains(err.Error(), "without source retention") {
		t.Fatalf("error hides the store cause: %v", err)
	}
}

// TestJournalSectionFormatCompat pins the section 9 format bump: new
// snapshots round-trip the delta payloads and the compaction counter,
// while snapshots in the pre-delta layout (no trailing extension) load
// cleanly and re-save to their exact original bytes.
func TestJournalSectionFormatCompat(t *testing.T) {
	ix := internalTestIndex(t)
	mutateInternal(t, ix, 3)
	if err := ix.Delete(context.Background(), 2, "http://int/e0"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Journal(), ix.Journal()) {
		t.Fatal("journal (with delta payloads) diverges after reload")
	}
	if back.Compactions() != ix.Compactions() {
		t.Fatal("compaction counter lost in round-trip")
	}

	// Forge the old format: strip every delta payload and the
	// compaction counter, so writeJournalSection omits the extension.
	old := back
	old.mu.Lock()
	for i := range old.journal {
		old.journal[i].Delta = nil
	}
	old.compactions.Store(0)
	old.mu.Unlock()
	var oldBytes bytes.Buffer
	if err := SaveIndex(&oldBytes, old); err != nil {
		t.Fatal(err)
	}
	if oldBytes.Len() >= buf.Len() {
		t.Fatalf("stripped snapshot (%d bytes) not smaller than full one (%d)", oldBytes.Len(), buf.Len())
	}

	// An old-format snapshot loads, keeps its v1 journal fields, and
	// re-saves bit-identically — readers and writers agree on the
	// extension being absent.
	oldBack, err := LoadIndex(bytes.NewReader(oldBytes.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if oldBack.Compactions() != 0 {
		t.Fatalf("old-format load invented %d compactions", oldBack.Compactions())
	}
	for _, je := range oldBack.Journal() {
		if je.Delta != nil {
			t.Fatal("old-format load invented delta payloads")
		}
		if je.Seq == 0 || len(je.Subjects) == 0 {
			t.Fatalf("old-format load dropped v1 fields: %+v", je)
		}
	}
	var resaved bytes.Buffer
	if err := SaveIndex(&resaved, oldBack); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), oldBytes.Bytes()) {
		t.Fatalf("old-format snapshot not bit-identical after reload (%d vs %d bytes)", resaved.Len(), oldBytes.Len())
	}

	// Replaying an old-format journal is refused with the typed
	// truncation error — the replica falls back to a snapshot resync
	// instead of silently diverging. A fresh epoch-0 index over the
	// same benchmark stands in for a replica bootstrapped before the
	// format bump.
	fresh := internalTestIndex(t)
	if _, err := fresh.Replay(context.Background(), oldBack.Journal()); !errors.Is(err, ErrJournalTruncated) {
		t.Fatalf("old-format replay err = %v, want ErrJournalTruncated", err)
	}
}
