package minoaner_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"minoaner"
)

// buildBenchmarkIndex generates one benchmark and builds its index plus
// the batch reference result.
func buildBenchmarkIndex(t *testing.T, name string, seed int64, scale float64) (*minoaner.Benchmark, *minoaner.Index, *minoaner.Result) {
	t.Helper()
	b, err := minoaner.GenerateBenchmark(name, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := minoaner.DefaultConfig()
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := minoaner.Resolve(b.KB1, b.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b, ix, res
}

// TestIndexQueryEqualsBatchResolve is the acceptance property: querying
// every KB2 entity through the index reproduces the batch Resolve match
// set exactly. Run per benchmark so a failure names the dataset.
func TestIndexQueryEqualsBatchResolve(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		t.Run(name, func(t *testing.T) {
			b, ix, res := buildBenchmarkIndex(t, name, 42, 0.15)

			if got := ix.Matches(); !reflect.DeepEqual(got, res.Matches) {
				t.Fatalf("Index.Matches() diverges from batch Resolve: %d vs %d pairs", len(got), len(res.Matches))
			}

			// Query every KB2 entity one at a time and reassemble the set.
			uris := b.KB2.URIs()
			seen := make(map[minoaner.Match]bool)
			var queried []minoaner.Match
			for _, uri := range uris {
				results := ix.Query(uri)
				if len(results) != 1 {
					t.Fatalf("Query(%q) returned %d results", uri, len(results))
				}
				qr := results[0]
				if !qr.In2 {
					t.Fatalf("KB2 URI %q not found in KB2 side", uri)
				}
				for _, m := range qr.Matches {
					if !seen[m] {
						seen[m] = true
						queried = append(queried, m)
					}
				}
			}
			// The union is a permutation of the batch order (queries follow
			// KB2 iteration order, the batch is (E1,E2)-sorted); compare as
			// sorted sets.
			if !reflect.DeepEqual(sortMatches(queried), sortMatches(res.Matches)) {
				t.Fatalf("union of per-entity queries (%d) != batch matches (%d)", len(queried), len(res.Matches))
			}
		})
	}
}

// sortMatches returns a copy ordered by (URI1, URI2).
func sortMatches(in []minoaner.Match) []minoaner.Match {
	out := append([]minoaner.Match(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].URI1 != out[j].URI1 {
			return out[i].URI1 < out[j].URI1
		}
		return out[i].URI2 < out[j].URI2
	})
	return out
}

// TestKBBinaryBitIdentityBenchmarks is the acceptance property on the
// KB side: WriteBinary -> ReadKBBinary -> WriteBinary is bit-identical
// for all four benchmark KBs (both sides of each pair).
func TestKBBinaryBitIdentityBenchmarks(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		t.Run(name, func(t *testing.T) {
			b, err := minoaner.GenerateBenchmark(name, 42, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			for side, k := range map[string]*minoaner.KB{"KB1": b.KB1, "KB2": b.KB2} {
				var first bytes.Buffer
				if err := k.WriteBinary(&first); err != nil {
					t.Fatal(err)
				}
				back, err := minoaner.ReadKBBinary(bytes.NewReader(first.Bytes()))
				if err != nil {
					t.Fatalf("%s: %v", side, err)
				}
				var second bytes.Buffer
				if err := back.WriteBinary(&second); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(first.Bytes(), second.Bytes()) {
					t.Errorf("%s not bit-identical after reload (%d vs %d bytes)",
						side, first.Len(), second.Len())
				}
				if back.Stats() != k.Stats() {
					t.Errorf("%s stats diverge after reload", side)
				}
			}
		})
	}
}

func TestIndexQueryUnknownURI(t *testing.T) {
	_, ix, _ := buildBenchmarkIndex(t, "Restaurant", 1, 0.1)
	results := ix.Query("http://nowhere.example.org/nothing")
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	qr := results[0]
	if qr.In1 || qr.In2 || len(qr.Matches) != 0 {
		t.Errorf("unknown URI resolved: %+v", qr)
	}
}

func TestSnapshotRoundTripBitIdentity(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		t.Run(name, func(t *testing.T) {
			_, ix, _ := buildBenchmarkIndex(t, name, 7, 0.1)
			var first bytes.Buffer
			if err := minoaner.SaveIndex(&first, ix); err != nil {
				t.Fatal(err)
			}
			loaded, err := minoaner.LoadIndex(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if err := minoaner.SaveIndex(&second, loaded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("snapshot not bit-identical after load: %d vs %d bytes", first.Len(), second.Len())
			}
			if !reflect.DeepEqual(loaded.Matches(), ix.Matches()) {
				t.Fatal("loaded index match set diverges")
			}
			if !reflect.DeepEqual(loaded.Stats(), ix.Stats()) {
				t.Fatalf("loaded index stats diverge:\n%+v\n%+v", loaded.Stats(), ix.Stats())
			}
			if loaded.Config() != ix.Config() {
				t.Fatalf("loaded config %+v != %+v", loaded.Config(), ix.Config())
			}
		})
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	_, ix, _ := buildBenchmarkIndex(t, "Restaurant", 3, 0.1)
	var buf bytes.Buffer
	if err := minoaner.SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] = 'X'
		if _, err := minoaner.LoadIndex(bytes.NewReader(mut)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[4] = 99
		if _, err := minoaner.LoadIndex(bytes.NewReader(mut)); !errors.Is(err, minoaner.ErrSnapshotCorrupt) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		// Flip one bit at several offsets; every mutation must be caught
		// (the CRCs cover all payload bytes, the frame is length-checked).
		for off := 5; off < len(data); off += len(data) / 37 {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x10
			if _, err := minoaner.LoadIndex(bytes.NewReader(mut)); err == nil {
				t.Errorf("bit flip at offset %d accepted", off)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{0, 3, 7, len(data) / 3, len(data) - 2} {
			if _, err := minoaner.LoadIndex(bytes.NewReader(data[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
}

func TestIndexQueryReader(t *testing.T) {
	b, ix, res := buildBenchmarkIndex(t, "Restaurant", 11, 0.1)

	// Feed the whole KB2 serialization back as a delta: resolving it
	// against the indexed KB1 must reproduce the batch result.
	var nt bytes.Buffer
	if err := b.WriteKB2(&nt); err != nil {
		t.Fatal(err)
	}
	got, err := ix.QueryReader(context.Background(), minoaner.Source{Name: "delta", R: &nt})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Matches, res.Matches) {
		t.Fatalf("QueryReader over full KB2 gave %d matches, batch gave %d", len(got.Matches), len(res.Matches))
	}

	// A malformed delta fails strictly, resolves leniently.
	if _, err := ix.QueryReader(context.Background(), minoaner.Source{Name: "bad", R: strings.NewReader("not a triple\n")}); err == nil {
		t.Error("malformed delta accepted in strict mode")
	}
	lenientRes, err := ix.QueryReader(context.Background(), minoaner.Source{Name: "bad", R: strings.NewReader("not a triple\n"), Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if lenientRes.SkippedLines2 != 1 {
		t.Errorf("SkippedLines2 = %d, want 1", lenientRes.SkippedLines2)
	}
}

func TestSaveLoadIndexFile(t *testing.T) {
	_, ix, _ := buildBenchmarkIndex(t, "Restaurant", 5, 0.1)
	path := t.TempDir() + "/index.msnp"
	if err := minoaner.SaveIndexFile(path, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := minoaner.LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Matches(), ix.Matches()) {
		t.Error("file round trip diverges")
	}
}
