package minoaner_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"minoaner"
)

func newTestServer(t *testing.T) (*minoaner.Benchmark, *minoaner.Index, *httptest.Server) {
	t.Helper()
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 21, 0.15)
	srv := httptest.NewServer(minoaner.NewServer(ix))
	t.Cleanup(srv.Close)
	return b, ix, srv
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServeHealthzAndStats(t *testing.T) {
	_, ix, srv := newTestServer(t)

	var health struct {
		Status  string `json:"status"`
		Matches int    `json:"matches"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Matches != len(ix.Matches()) {
		t.Errorf("healthz = %+v", health)
	}

	var stats struct {
		Matches     int `json:"matches"`
		TokenBlocks int `json:"token_blocks"`
		KB1         struct {
			Entities int `json:"entities"`
		} `json:"kb1"`
	}
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	want := ix.Stats()
	if stats.Matches != want.Matches || stats.TokenBlocks != want.TokenBlocks || stats.KB1.Entities != want.KB1.Entities {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}
}

type resolveResponse struct {
	Results []struct {
		URI     string `json:"uri"`
		In1     bool   `json:"in_kb1"`
		In2     bool   `json:"in_kb2"`
		Matches []struct {
			URI1 string `json:"uri1"`
			URI2 string `json:"uri2"`
		} `json:"matches"`
	} `json:"results"`
}

func TestServeResolveGetAndPost(t *testing.T) {
	b, ix, srv := newTestServer(t)
	matches := ix.Matches()
	if len(matches) == 0 {
		t.Fatal("benchmark produced no matches")
	}
	matched := matches[0].URI2
	unknown := "http://nowhere.example.org/x"

	var viaGet resolveResponse
	code := getJSON(t, srv.URL+"/resolve?uri="+matched+"&uri="+unknown, &viaGet)
	if code != http.StatusOK {
		t.Fatalf("resolve status %d", code)
	}
	if len(viaGet.Results) != 2 {
		t.Fatalf("got %d results", len(viaGet.Results))
	}
	if !viaGet.Results[0].In2 || len(viaGet.Results[0].Matches) == 0 {
		t.Errorf("matched URI result: %+v", viaGet.Results[0])
	}
	if viaGet.Results[0].Matches[0].URI1 != matches[0].URI1 {
		t.Errorf("match URI1 = %q, want %q", viaGet.Results[0].Matches[0].URI1, matches[0].URI1)
	}
	if viaGet.Results[1].In1 || viaGet.Results[1].In2 || len(viaGet.Results[1].Matches) != 0 {
		t.Errorf("unknown URI result: %+v", viaGet.Results[1])
	}

	body, _ := json.Marshal(map[string][]string{"uris": {matched, unknown}})
	resp, err := http.Post(srv.URL+"/resolve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var viaPost resolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&viaPost); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaGet, viaPost) {
		t.Error("GET and POST /resolve disagree")
	}

	// Error paths.
	if code := getJSON(t, srv.URL+"/resolve", nil); code != http.StatusBadRequest {
		t.Errorf("empty resolve status %d", code)
	}
	resp2, err := http.Post(srv.URL+"/resolve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status %d", resp2.StatusCode)
	}
	_ = b
}

func TestServeDelta(t *testing.T) {
	b, _, srv := newTestServer(t)
	var nt bytes.Buffer
	if err := b.WriteKB2(&nt); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/delta?name=kb2-replay", "application/x-ntriples", bytes.NewReader(nt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		t.Fatalf("delta status %d: %s", resp.StatusCode, payload)
	}
	var delta struct {
		Name     string `json:"name"`
		Entities int    `json:"entities"`
		Matches  []struct {
			URI1 string `json:"uri1"`
			URI2 string `json:"uri2"`
		} `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&delta); err != nil {
		t.Fatal(err)
	}
	if delta.Name != "kb2-replay" || delta.Entities != b.KB2.Len() {
		t.Errorf("delta header = %+v", delta)
	}
	ref, err := minoaner.Resolve(b.KB1, b.KB2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Matches) != len(ref.Matches) {
		t.Errorf("delta matches %d, batch %d", len(delta.Matches), len(ref.Matches))
	}

	// Malformed body: strict rejects, lenient succeeds.
	resp2, err := http.Post(srv.URL+"/delta", "application/x-ntriples", strings.NewReader("junk line\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("strict junk delta status %d", resp2.StatusCode)
	}
	resp3, err := http.Post(srv.URL+"/delta?lenient=1", "application/x-ntriples", strings.NewReader("junk line\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("lenient junk delta status %d", resp3.StatusCode)
	}
}

// repeatReader yields a repeating byte pattern forever — an oversized
// body without materializing it.
type repeatReader struct{ pattern []byte }

func (r repeatReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.pattern[i%len(r.pattern)]
	}
	return len(p), nil
}

// TestServePayloadLimits: oversized POST bodies on /resolve and /delta
// are rejected with 413 and a JSON error, not an opaque parse failure.
func TestServePayloadLimits(t *testing.T) {
	_, _, srv := newTestServer(t)

	check := func(path string, body io.Reader) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/octet-stream", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status %d, want 413", path, resp.StatusCode)
		}
		var msg struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
			t.Fatalf("%s 413 response is not JSON: %v", path, err)
		}
		if msg.Error == "" {
			t.Errorf("%s 413 response carries no error message", path)
		}
	}

	// /resolve caps at 16 MiB (a syntactically valid prefix with one
	// endless string keeps the decoder reading until the cap trips),
	// /delta at 64 MiB (lenient mode keeps the parser reading junk).
	check("/resolve", io.MultiReader(
		strings.NewReader(`{"uris": ["`),
		io.LimitReader(repeatReader{[]byte("a")}, 16<<20+1024)))
	check("/delta?lenient=1", io.LimitReader(repeatReader{[]byte("junk \n")}, 64<<20+1024))
}

// TestServeConcurrentQueriesMatchSequential is the serve acceptance
// property: N goroutines hammering one shared Index produce responses
// identical to a sequential pass — under -race, this also proves the
// read path is data-race-free.
func TestServeConcurrentQueriesMatchSequential(t *testing.T) {
	b, ix, srv := newTestServer(t)
	uris := b.KB2.URIs()

	// Sequential reference: one response body per URI, via the handler.
	sequential := make([]string, len(uris))
	for i, uri := range uris {
		sequential[i] = fetchResolve(t, srv.URL, uri)
	}

	const (
		goroutines = 16
		rounds     = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger start offsets so goroutines hit different URIs at
				// the same instant.
				for i := range uris {
					idx := (i + g*7 + r) % len(uris)
					got, err := fetchResolveErr(srv.URL, uris[idx])
					if err != nil {
						errs <- err
						return
					}
					if got != sequential[idx] {
						errs <- fmt.Errorf("goroutine %d: response for %q diverged:\n%s\nvs sequential\n%s",
							g, uris[idx], got, sequential[idx])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Direct Index.Query concurrency (no HTTP in between), same property.
	seqResults := make([][]minoaner.QueryResult, len(uris))
	for i, uri := range uris {
		seqResults[i] = ix.Query(uri)
	}
	var wg2 sync.WaitGroup
	errs2 := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg2.Add(1)
		go func(g int) {
			defer wg2.Done()
			for i := range uris {
				idx := (i + g*3) % len(uris)
				if got := ix.Query(uris[idx]); !reflect.DeepEqual(got, seqResults[idx]) {
					errs2 <- fmt.Errorf("Query(%q) diverged under concurrency", uris[idx])
					return
				}
			}
		}(g)
	}
	wg2.Wait()
	close(errs2)
	for err := range errs2 {
		t.Fatal(err)
	}
}

func fetchResolve(t *testing.T, base, uri string) string {
	t.Helper()
	body, err := fetchResolveErr(base, uri)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func fetchResolveErr(base, uri string) (string, error) {
	resp, err := http.Get(base + "/resolve?uri=" + uri)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("resolve %q: status %d: %s", uri, resp.StatusCode, payload)
	}
	return string(payload), nil
}
