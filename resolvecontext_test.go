package minoaner_test

import (
	"context"
	"errors"
	"testing"

	"minoaner"
)

func TestResolveContextCancelled(t *testing.T) {
	kb1, kb2 := loadPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := minoaner.ResolveContext(ctx, kb1, kb2, minoaner.DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled resolve returned a partial Result")
	}
}

func TestResolveContextCancelMidRun(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Rexa-DBLP", 42, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res, err := minoaner.ResolveContext(ctx, b.KB1, b.KB2, minoaner.DefaultConfig(),
		minoaner.WithProgress(func(p minoaner.StageProgress) {
			if p.Stage == "value-candidates" && !p.Done {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("mid-run cancellation returned a partial Result")
	}
}

func TestResolveContextStageTimingsAndProgress(t *testing.T) {
	kb1, kb2 := loadPair(t)
	var events []minoaner.StageProgress
	res, err := minoaner.ResolveContext(context.Background(), kb1, kb2, minoaner.DefaultConfig(),
		minoaner.WithProgress(func(p minoaner.StageProgress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageTimings) == 0 {
		t.Fatal("no stage timings on Result")
	}
	if len(events) != 2*len(res.StageTimings) {
		t.Errorf("progress events = %d, want %d", len(events), 2*len(res.StageTimings))
	}
	for i, st := range res.StageTimings {
		if st.Stage == "" || st.Duration < 0 {
			t.Errorf("timing %d malformed: %+v", i, st)
		}
	}
	// The run itself must match the plain Resolve output.
	plain, err := minoaner.Resolve(kb1, kb2, minoaner.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Matches) != len(res.Matches) {
		t.Errorf("ResolveContext found %d matches, Resolve %d", len(res.Matches), len(plain.Matches))
	}
}
