package minoaner_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"minoaner"
)

// queryDelta cuts a small delta KB out of the side-2 document (the
// descriptions of one entity plus a fresh one linking into the KB).
func queryDelta(t *testing.T, d2 *ntDoc, uri string) *minoaner.KB {
	t.Helper()
	lines := append([]string(nil), d2.linesOf(uri)...)
	lines = append(lines,
		fmt.Sprintf("<http://shard/probe> <http://mut/name> \"probe entity kappa\" ."),
		fmt.Sprintf("<http://shard/probe> <http://mut/link> %s .", subjectToken(uri)))
	k, err := minoaner.LoadKB("qdelta", strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// assertShardedEquivalent compares a sharded index against an
// unsharded reference over the same KBs: match set, stats (modulo the
// shard count itself), point queries, and the scatter-gather delta
// path against the single-substrate one.
func assertShardedEquivalent(t *testing.T, label string, sharded, ref *minoaner.Index, delta *minoaner.KB) {
	t.Helper()
	if got, want := sharded.Matches(), ref.Matches(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: matches diverge (%d vs %d)", label, len(got), len(want))
	}
	gs, ws := sharded.Stats(), ref.Stats()
	ws.Shards = gs.Shards
	ws.Epoch, ws.JournalLength = gs.Epoch, gs.JournalLength
	if gs != ws {
		t.Fatalf("%s: stats diverge:\n got %+v\nwant %+v", label, gs, ws)
	}
	var sample []string
	for _, uris := range [][]string{sharded.KB1().URIs(), sharded.KB2().URIs()} {
		for i := 0; i < len(uris); i += 1 + len(uris)/13 {
			sample = append(sample, uris[i])
		}
	}
	if !reflect.DeepEqual(sharded.Query(sample...), ref.Query(sample...)) {
		t.Fatalf("%s: Query diverges", label)
	}
	got, err := sharded.QueryKBFast(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.QueryKBFast(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("%s: QueryKB diverges: %v vs %v", label, got.Matches, want.Matches)
	}
}

// TestShardedIndexEquivalence is the headline sharding invariant at the
// public API: an index built with WithShards(k) answers bit-identically
// to the unsharded index on all four benchmarks, for every combination
// of shards 1/2/4/8 and workers 1/4.
func TestShardedIndexEquivalence(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := minoaner.GenerateBenchmark(name, 42, 0.08)
			if err != nil {
				t.Fatal(err)
			}
			d2 := docFromKB(t, b.WriteKB2)
			delta := queryDelta(t, d2, b.KB2.URIs()[b.KB2.Len()/2])
			for _, workers := range []int{1, 4} {
				cfg := minoaner.DefaultConfig()
				cfg.Workers = workers
				ref, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 2, 4, 8} {
					ix, err := minoaner.BuildIndexSharded(b.KB1, b.KB2, cfg, shards)
					if err != nil {
						t.Fatal(err)
					}
					ix.Prepare()
					if got := ix.Shards(); got != shards {
						t.Fatalf("Shards() = %d, want %d", got, shards)
					}
					if ix.Sharded() != (shards > 1) {
						t.Fatalf("Sharded() = %v with %d shards", ix.Sharded(), shards)
					}
					assertShardedEquivalent(t, fmt.Sprintf("%s shards=%d workers=%d", name, shards, workers), ix, ref, delta)
				}
			}
		})
	}
}

// TestShardedMutationEquivalence drives a mutation storm through a
// sharded index — upserts and deletes on both sides, so shard
// substrates get patched, re-owned, and rebuilt — and checks every
// answer stays bit-identical to an unsharded index absorbing the same
// storm, and to a from-scratch rebuild.
func TestShardedMutationEquivalence(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 4} {
				b, err := minoaner.GenerateBenchmark("Restaurant", 42, 0.15)
				if err != nil {
					t.Fatal(err)
				}
				cfg := minoaner.DefaultConfig()
				cfg.Workers = workers
				ix, err := minoaner.BuildIndexSharded(b.KB1, b.KB2, cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
				if err != nil {
					t.Fatal(err)
				}
				d1 := docFromKB(t, b.WriteKB1)
				d2 := docFromKB(t, b.WriteKB2)
				d1ref := docFromKB(t, b.WriteKB1)
				d2ref := docFromKB(t, b.WriteKB2)

				// Two identical pseudo-random streams drive both indexes
				// through the same storm, side 1 included (side-1 mutations
				// are the ones that patch the owner shards).
				seed := int64(shards*100 + workers)
				rngA := rand.New(rand.NewSource(seed))
				rngB := rand.New(rand.NewSource(seed))
				for round := 0; round < 8; round++ {
					side := 2
					if round%3 == 0 {
						side = 1
					}
					docA, curA, docB, curB := d2, ix.KB2(), d2ref, ref.KB2()
					if side == 1 {
						docA, curA, docB, curB = d1, ix.KB1(), d1ref, ref.KB1()
					}
					mutationStep(t, rngA, ix, side, docA, curA, round)
					mutationStep(t, rngB, ref, side, docB, curB, round)
				}
				if !ix.Sharded() {
					t.Fatal("mutated index lost its sharded substrate")
				}
				label := fmt.Sprintf("storm shards=%d workers=%d", shards, workers)
				delta := queryDelta(t, d2, ix.KB2().URIs()[0])
				assertShardedEquivalent(t, label, ix, ref, delta)
				assertRebuildEquivalent(t, label+" vs rebuild", ix, d1, d2, cfg)

				// Compact flattens the per-shard overlays too.
				ix.Compact()
				assertShardedEquivalent(t, label+" post-compact", ix, ref, delta)
			}
		})
	}
}

// TestReshardLive re-partitions a prepared, mutated index in place:
// every shard count must answer identically, including back to
// unsharded.
func TestReshardLive(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 17, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := minoaner.DefaultConfig()
	ix, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 3; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}
	// Mirror the mutated side-2 document onto the reference.
	kb2 := d2.kb(t, "kb2")
	if err := ref.Upsert(context.Background(), 2, kb2); err != nil {
		t.Fatal(err)
	}
	if deleted := missingURIs(ref.KB2().URIs(), kb2.URIs()); len(deleted) > 0 {
		if err := ref.Delete(context.Background(), 2, deleted...); err != nil {
			t.Fatal(err)
		}
	}
	delta := queryDelta(t, d2, ix.KB2().URIs()[1])
	for _, k := range []int{4, 2, 8, 1} {
		if err := ix.Reshard(k); err != nil {
			t.Fatal(err)
		}
		if got := ix.Shards(); got != k {
			t.Fatalf("Shards() = %d after Reshard(%d)", got, k)
		}
		assertShardedEquivalent(t, fmt.Sprintf("reshard %d", k), ix, ref, delta)
	}
	if err := ix.Reshard(0); err == nil {
		t.Fatal("Reshard(0) accepted")
	}
}

// missingURIs lists the URIs of have that are absent from keep.
func missingURIs(have, keep []string) []string {
	set := make(map[string]bool, len(keep))
	for _, u := range keep {
		set[u] = true
	}
	var out []string
	for _, u := range have {
		if !set[u] {
			out = append(out, u)
		}
	}
	return out
}

// TestShardedSnapshotRoundTrip: the shard count persists (section 10),
// the reloaded index resumes scatter-gather resolution, re-saving is
// bit-identical, and pre-sharding snapshots keep loading as unsharded.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 23, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := minoaner.DefaultConfig()
	ix, err := minoaner.BuildIndexSharded(b.KB1, b.KB2, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix.Prepare()
	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 3; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}

	var first bytes.Buffer
	if err := minoaner.SaveIndex(&first, ix); err != nil {
		t.Fatal(err)
	}
	back, err := minoaner.LoadIndex(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Shards(); got != 4 {
		t.Fatalf("reloaded Shards() = %d, want 4", got)
	}
	if !back.Sharded() {
		t.Fatal("reloaded index did not re-derive the partitioned substrate")
	}
	delta := queryDelta(t, d2, ix.KB2().URIs()[2])
	assertShardedEquivalent(t, "reloaded", back, ix, delta)
	var second bytes.Buffer
	if err := minoaner.SaveIndex(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("sharded snapshot not bit-identical after reload (%d vs %d bytes)", first.Len(), second.Len())
	}

	// An unsharded snapshot has no sharding section and loads as K=1.
	plain, err := minoaner.BuildIndex(b.KB1, b.KB2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := minoaner.SaveIndex(&buf, plain); err != nil {
		t.Fatal(err)
	}
	pb, err := minoaner.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := pb.Shards(); got != 1 {
		t.Fatalf("unsharded snapshot loaded with Shards() = %d", got)
	}
	if pb.Sharded() {
		t.Fatal("unsharded snapshot claims a partitioned substrate")
	}
}

// TestShardedConcurrentMutationStorm hammers a sharded mutable index:
// 12 goroutines run scatter-gather deltas, point queries, and stats
// against all shards while a storm mutates side 1 — patching the owner
// shards — and side 2, with a mid-storm Compact and Reshard. Run under
// -race; the epoch swap must keep every response torn-free.
func TestShardedConcurrentMutationStorm(t *testing.T) {
	b, err := minoaner.GenerateBenchmark("Restaurant", 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := minoaner.DefaultConfig()
	cfg.Workers = 2
	ix, err := minoaner.BuildIndexSharded(b.KB1, b.KB2, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix.Prepare()
	if !ix.Sharded() {
		t.Fatal("prepared sharded index reports no partitioned substrate")
	}
	d1 := docFromKB(t, b.WriteKB1)
	d2 := docFromKB(t, b.WriteKB2)
	uris2 := ix.KB2().URIs()
	delta := queryDelta(t, d2, uris2[0])

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					if _, err := ix.QueryKB(context.Background(), delta); err != nil {
						t.Errorf("QueryKB: %v", err)
						return
					}
				case 1:
					res := ix.Query(uris2[(g*29+i)%len(uris2)])
					if len(res) != 1 {
						t.Errorf("query returned %d results", len(res))
						return
					}
				default:
					_ = ix.Stats()
					_ = ix.Shards()
				}
			}
		}(g)
	}

	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 12; round++ {
		side, doc, cur := 2, d2, ix.KB2()
		if round%2 == 0 {
			side, doc, cur = 1, d1, ix.KB1()
		}
		mutationStep(t, rng, ix, side, doc, cur, round)
		switch round {
		case 5:
			ix.Compact()
		case 8:
			if err := ix.Reshard(2); err != nil {
				t.Errorf("Reshard: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	assertRebuildEquivalent(t, "post-storm", ix, d1, d2, cfg)
}
