package minoaner_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"minoaner"
)

// deltaKB assembles a small delta from the first few KB2 entities of a
// benchmark — enough to drive the prepared/sharded delta paths.
func deltaKB(t *testing.T, b *minoaner.Benchmark, n int) *minoaner.KB {
	t.Helper()
	d := docFromKB(t, b.WriteKB2)
	uris := b.KB2.URIs()
	if n > len(uris) {
		n = len(uris)
	}
	var lines []string
	for _, uri := range uris[:n] {
		lines = append(lines, d.linesOf(uri)...)
	}
	k, err := minoaner.LoadKB("delta", strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// mustEqualResults compares two delta-resolution results.
func mustEqualResults(t *testing.T, label string, got, want *minoaner.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("%s: %d matches vs %d — mapped and eager answers diverge", label, len(got.Matches), len(want.Matches))
	}
}

// TestOpenIndexBitIdentity is the tentpole acceptance property: a
// mapped open answers every query bit-identically to an eager load,
// and saving the mapped index reproduces the snapshot bytes exactly.
func TestOpenIndexBitIdentity(t *testing.T) {
	for _, name := range minoaner.BenchmarkNames() {
		t.Run(name, func(t *testing.T) {
			b, ix, _ := buildBenchmarkIndex(t, name, 7, 0.1)
			ix.Prepare()
			var buf bytes.Buffer
			if err := minoaner.SaveIndex(&buf, ix); err != nil {
				t.Fatal(err)
			}
			data := buf.Bytes()

			eager, err := minoaner.LoadIndex(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := minoaner.OpenIndex(data)
			if err != nil {
				t.Fatal(err)
			}
			if !mapped.Prepared() {
				t.Error("mapped open lost the prepared flag")
			}
			if mapped.Config() != eager.Config() {
				t.Errorf("configs diverge: %+v vs %+v", mapped.Config(), eager.Config())
			}
			if !reflect.DeepEqual(mapped.Matches(), eager.Matches()) {
				t.Fatal("match sets diverge")
			}

			// Query sweep: every entity of both KBs, mapped vs eager.
			uris := append(b.KB1.URIs(), b.KB2.URIs()...)
			for _, uri := range uris {
				if g, w := mapped.Query(uri), eager.Query(uri); !reflect.DeepEqual(g, w) {
					t.Fatalf("Query(%q) diverges", uri)
				}
			}

			// Delta resolution exercises the lazily decoded prepared
			// substrate and KB1 full tier.
			delta := deltaKB(t, b, 5)
			got, err := mapped.QueryKB(context.Background(), delta)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eager.QueryKB(context.Background(), delta)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, "QueryKB", got, want)

			// Stats force the remaining tiers; they must agree too.
			if ms, es := mapped.Stats(), eager.Stats(); ms != es {
				t.Errorf("stats diverge:\nmapped %+v\neager  %+v", ms, es)
			}

			// Save(Open(x)) == x, bit for bit.
			var second bytes.Buffer
			if err := minoaner.SaveIndex(&second, mapped); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(second.Bytes(), data) {
				t.Fatalf("snapshot not bit-identical after mapped open: %d vs %d bytes", second.Len(), len(data))
			}
		})
	}
}

// TestOpenIndexShardedBitIdentity repeats the property on a sharded
// snapshot: the scatter-gather path must come up lazily too.
func TestOpenIndexShardedBitIdentity(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 13, 0.1)
	ix.Prepare()
	if err := ix.Reshard(4); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := minoaner.SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	mapped, err := minoaner.OpenIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	// The sharding record is part of the eager tier: Sharded answers
	// before the substrate decodes.
	if mapped.Shards() != 4 || !mapped.Sharded() {
		t.Fatalf("mapped open: shards=%d sharded=%v", mapped.Shards(), mapped.Sharded())
	}
	delta := deltaKB(t, b, 6)
	got, err := mapped.QueryKB(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.QueryKB(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "sharded QueryKB", got, want)

	var second bytes.Buffer
	if err := minoaner.SaveIndex(&second, mapped); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second.Bytes(), data) {
		t.Fatal("sharded snapshot not bit-identical after mapped open")
	}
}

// TestMappedCorruptionSweep flips one bit at a stride of offsets across
// a prepared snapshot. Because sections decode lazily, damage may
// surface at open, at the first delta query, or at save — but it must
// surface as a typed ErrSnapshotCorrupt somewhere (never a crash), or
// the decoded state must be provably unharmed (bit-identical save).
func TestMappedCorruptionSweep(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 3, 0.1)
	ix.Prepare()
	var buf bytes.Buffer
	if err := minoaner.SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	delta := deltaKB(t, b, 3)

	check := func(t *testing.T, mut []byte, label string) {
		t.Helper()
		mustBeTyped := func(stage string, err error) {
			if !errors.Is(err, minoaner.ErrSnapshotCorrupt) {
				t.Errorf("%s: %s error not ErrSnapshotCorrupt: %v", label, stage, err)
			}
		}
		opened, err := minoaner.OpenIndex(mut)
		if err != nil {
			mustBeTyped("open", err)
			return
		}
		if _, err := opened.QueryKB(context.Background(), delta); err != nil {
			mustBeTyped("query", err)
			return
		}
		var out bytes.Buffer
		if err := minoaner.SaveIndex(&out, opened); err != nil {
			mustBeTyped("save", err)
			return
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Errorf("%s: survived open+query+save with different content", label)
		}
	}

	t.Run("bit flips", func(t *testing.T) {
		for off := 5; off < len(data); off += len(data) / 37 {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x10
			check(t, mut, "offset "+itoa(off))
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{0, 3, 7, len(data) / 3, len(data) - 2} {
			check(t, data[:cut:cut], "cut "+itoa(cut))
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestMappedCloseSafety closes (munmaps) a mapped index while readers
// are mid-flight and keeps using it afterwards. If any decoded
// structure aliased the mapping, the post-Close queries would fault.
func TestMappedCloseSafety(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 5, 0.1)
	ix.Prepare()
	path := filepath.Join(t.TempDir(), "index.msnp")
	if err := minoaner.SaveIndexFile(path, ix); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mapped, err := minoaner.OpenIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Mapped() {
		t.Fatal("OpenIndexFile did not retain the mapping")
	}
	delta := deltaKB(t, b, 3)
	uris := b.KB2.URIs()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mapped.Query(uris[(g*31+i)%len(uris)])
				if i%7 == 0 {
					if _, err := mapped.QueryKB(context.Background(), delta); err != nil {
						t.Errorf("goroutine %d: QueryKB: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	if mapped.Mapped() {
		t.Error("Mapped() still true after Close")
	}
	if err := mapped.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// The index stays fully usable off its materialized copies.
	if _, err := mapped.QueryKB(context.Background(), delta); err != nil {
		t.Fatalf("QueryKB after Close: %v", err)
	}
	var out bytes.Buffer
	if err := minoaner.SaveIndex(&out, mapped); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Error("post-Close save not bit-identical to the snapshot file")
	}
}

// TestMappedMutationEquivalence applies the same mutations to a mapped
// and an eagerly loaded copy of one snapshot: the copy-on-write epoch
// machinery must give bit-identical state on both.
func TestMappedMutationEquivalence(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 19, 0.12)
	var buf bytes.Buffer
	if err := minoaner.SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	eager, err := minoaner.LoadIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := minoaner.OpenIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Mutable() {
		t.Fatal("snapshot lost its sources through mapped open")
	}

	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 5; round++ {
		// Drive both indexes through the same scripted mutation by
		// cloning the RNG stream: run the step against the eager index,
		// then replay its journal entry onto the mapped one.
		before := eager.Epoch()
		mutationStep(t, rng, eager, 2, d2, eager.KB2(), round)
		if eager.Epoch() == before {
			continue
		}
		tail, err := eager.JournalSince(before)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mapped.Replay(context.Background(), tail.Entries); err != nil {
			t.Fatalf("round %d: replay onto mapped: %v", round, err)
		}
	}
	if eager.Epoch() == 0 {
		t.Fatal("storm produced no mutations")
	}
	if mapped.Epoch() != eager.Epoch() {
		t.Fatalf("epochs diverge: mapped %d, eager %d", mapped.Epoch(), eager.Epoch())
	}
	if !reflect.DeepEqual(mapped.Matches(), eager.Matches()) {
		t.Fatal("matches diverge after identical mutations")
	}
	if !bytes.Equal(snapshotBytes(t, mapped), snapshotBytes(t, eager)) {
		t.Fatal("snapshots not bit-identical after identical mutations")
	}
}

// TestInspectIndexFile checks the O(header) inspection against the
// fully loaded index it summarizes.
func TestInspectIndexFile(t *testing.T) {
	b, ix, _ := buildBenchmarkIndex(t, "Restaurant", 11, 0.1)
	ix.Prepare()
	d2 := docFromKB(t, b.WriteKB2)
	rng := rand.New(rand.NewSource(41))
	for round := 0; ix.Epoch() < 2 && round < 12; round++ {
		mutationStep(t, rng, ix, 2, d2, ix.KB2(), round)
	}
	path := filepath.Join(t.TempDir(), "index.msnp")
	if err := minoaner.SaveIndexFile(path, ix); err != nil {
		t.Fatal(err)
	}

	si, err := minoaner.InspectIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if si.Matches != st.Matches || si.ByName != st.ByName || si.ByValue != st.ByValue || si.ByRank != st.ByRank {
		t.Errorf("match counts: %+v vs stats %+v", si, st)
	}
	if si.DiscardedByH4 != st.DiscardedByReciprocity {
		t.Errorf("DiscardedByH4 = %d, want %d", si.DiscardedByH4, st.DiscardedByReciprocity)
	}
	if si.NameBlocks != st.NameBlocks || si.TokenBlocks != st.TokenBlocks ||
		si.NameComparisons != st.NameComparisons || si.TokenComparisons != st.TokenComparisons ||
		si.PurgedBlocks != st.PurgedBlocks {
		t.Errorf("block stats diverge: %+v vs %+v", si, st)
	}
	if si.Config != ix.Config() {
		t.Errorf("config = %+v, want %+v", si.Config, ix.Config())
	}
	if si.KB1.Name != ix.KB1().Name() || si.KB1.Entities != ix.KB1().Len() ||
		si.KB2.Name != ix.KB2().Name() || si.KB2.Entities != ix.KB2().Len() {
		t.Errorf("KB summaries diverge: %+v / %+v", si.KB1, si.KB2)
	}
	if !si.Prepared {
		t.Error("prepared substrate not reported")
	}
	if si.Shards != 1 {
		t.Errorf("Shards = %d, want 1", si.Shards)
	}
	if si.Epoch != ix.Epoch() || si.JournalEntries != len(ix.Journal()) {
		t.Errorf("journal summary: epoch %d/%d entries %d/%d",
			si.Epoch, ix.Epoch(), si.JournalEntries, len(ix.Journal()))
	}
	if !si.Mutable() {
		t.Error("sources-bearing snapshot reported read-only")
	}
	if fi, err := os.Stat(path); err != nil || si.Size != fi.Size() {
		t.Errorf("Size = %d, stat %v/%v", si.Size, fi, err)
	}
}

// TestReplicaSnapshotPath: bootstrap lands the primary's snapshot on
// disk at the configured path and maps it, so a replica restart (or a
// human) can open the file directly.
func TestReplicaSnapshotPath(t *testing.T) {
	_, primary, srv, _, _ := newMutableServer(t)
	path := filepath.Join(t.TempDir(), "replica.msnp")
	rep, err := minoaner.NewReplica(srv.URL,
		minoaner.WithReplicaClient(srv.Client()),
		minoaner.WithReplicaSnapshotPath(path),
		minoaner.WithReplicaPoll(2*time.Millisecond),
		minoaner.WithReplicaJitterSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !rep.Index().Mapped() {
		t.Error("bootstrap did not map the landed snapshot")
	}
	if !reflect.DeepEqual(rep.Index().Matches(), primary.Matches()) {
		t.Fatal("bootstrapped replica diverges from primary")
	}
	// The landed file is a complete, openable snapshot.
	landed, err := minoaner.OpenIndexFile(path)
	if err != nil {
		t.Fatalf("opening landed snapshot: %v", err)
	}
	defer landed.Close()
	if !reflect.DeepEqual(landed.Matches(), primary.Matches()) {
		t.Fatal("landed snapshot diverges from primary")
	}
	if !bytes.Equal(snapshotBytes(t, landed), snapshotBytes(t, primary)) {
		t.Fatal("landed snapshot not bit-identical to the primary")
	}

	// The default (no path) bootstrap streams to an unlinked temp file
	// and still ends up mapped.
	rep2, err := minoaner.NewReplica(srv.URL,
		minoaner.WithReplicaClient(srv.Client()),
		minoaner.WithReplicaJitterSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep2.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep2.Index().Matches(), primary.Matches()) {
		t.Fatal("temp-file bootstrap diverges from primary")
	}
}
