package minoaner_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"minoaner"
)

type streamRecord struct {
	URI1      string  `json:"uri1"`
	URI2      string  `json:"uri2"`
	Score     float64 `json:"score"`
	Heuristic string  `json:"heuristic"`
}

// getStream issues one /resolve/stream request and decodes the NDJSON
// body line by line, failing on any malformed record.
func getStream(t *testing.T, url string) []streamRecord {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var out []streamRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec streamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%q)", len(out)+1, err, sc.Text())
		}
		if rec.URI1 == "" || rec.URI2 == "" {
			t.Fatalf("line %d missing URIs: %q", len(out)+1, sc.Text())
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeResolveStreamDrainEqualsMatches: an unbudgeted stream
// response is valid NDJSON with non-increasing scores whose pair set is
// exactly the epoch's match set, under both strategies.
func TestServeResolveStreamDrainEqualsMatches(t *testing.T) {
	_, ix, srv := newTestServer(t)
	want := sortMatches(ix.Matches())
	if len(want) == 0 {
		t.Fatal("index holds no matches; fixture too small")
	}
	for _, strategy := range []string{"", "?strategy=weight", "?strategy=blocks"} {
		recs := getStream(t, srv.URL+"/resolve/stream"+strategy)
		got := make([]minoaner.Match, len(recs))
		for i, r := range recs {
			if i > 0 && r.Score > recs[i-1].Score {
				t.Fatalf("strategy %q: score increased at record %d", strategy, i)
			}
			got[i] = minoaner.Match{URI1: r.URI1, URI2: r.URI2}
		}
		if gotSorted := sortMatches(got); len(gotSorted) != len(want) {
			t.Errorf("strategy %q: streamed %d pairs, index has %d matches", strategy, len(gotSorted), len(want))
		} else {
			for i := range want {
				if gotSorted[i] != want[i] {
					t.Errorf("strategy %q: pair %d = %+v, want %+v", strategy, i, gotSorted[i], want[i])
					break
				}
			}
		}
	}
}

// TestServeResolveStreamMaxPairs: max_pairs=k returns exactly the first
// k records of the unbudgeted stream.
func TestServeResolveStreamMaxPairs(t *testing.T) {
	_, _, srv := newTestServer(t)
	full := getStream(t, srv.URL+"/resolve/stream")
	if len(full) < 4 {
		t.Fatalf("need at least 4 matches, got %d", len(full))
	}
	k := len(full) / 2
	got := getStream(t, fmt.Sprintf("%s/resolve/stream?max_pairs=%d", srv.URL, k))
	if len(got) != k {
		t.Fatalf("max_pairs=%d returned %d records", k, len(got))
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("record %d = %+v, not the stream prefix %+v", i, got[i], full[i])
		}
	}
}

// TestServeResolveStreamBadParams: malformed budgets and strategies are
// rejected with 400 before any streaming starts.
func TestServeResolveStreamBadParams(t *testing.T) {
	_, _, srv := newTestServer(t)
	for _, q := range []string{
		"max_pairs=0", "max_pairs=-3", "max_pairs=abc",
		"max_comparisons=0", "max_comparisons=x",
		"budget_ms=0", "budget_ms=-1", "budget_ms=soon",
		"strategy=fastest",
	} {
		resp, err := http.Get(srv.URL + "/resolve/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestServeResolveStreamCounters: streamed traffic shows up in /stats
// (pairs emitted, first-match count and latency) and /metrics.
func TestServeResolveStreamCounters(t *testing.T) {
	_, _, srv := newTestServer(t)
	recs := getStream(t, srv.URL+"/resolve/stream")
	if len(recs) == 0 {
		t.Fatal("stream emitted nothing")
	}

	var stats struct {
		Stream struct {
			PairsEmitted    int64 `json:"pairs_emitted"`
			FirstMatches    int64 `json:"first_matches"`
			AvgFirstMatchUS int64 `json:"avg_time_to_first_match_us"`
		} `json:"stream"`
	}
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Stream.PairsEmitted != int64(len(recs)) {
		t.Errorf("stats pairs_emitted = %d, want %d", stats.Stream.PairsEmitted, len(recs))
	}
	if stats.Stream.FirstMatches != 1 {
		t.Errorf("stats first_matches = %d, want 1", stats.Stream.FirstMatches)
	}
	if stats.Stream.AvgFirstMatchUS < 0 {
		t.Errorf("stats avg_time_to_first_match_us = %d", stats.Stream.AvgFirstMatchUS)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	found := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		var name string
		var value float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &value); err != nil {
			continue
		}
		switch name {
		case "minoaner_stream_pairs_total":
			found[name] = true
			if int64(value) != int64(len(recs)) {
				t.Errorf("%s = %g, want %d", name, value, len(recs))
			}
		case "minoaner_stream_first_match_total":
			found[name] = true
			if int64(value) != 1 {
				t.Errorf("%s = %g, want 1", name, value)
			}
		case "minoaner_stream_time_to_first_match_microseconds_total":
			found[name] = true
		}
	}
	for _, name := range []string{
		"minoaner_stream_pairs_total",
		"minoaner_stream_first_match_total",
		"minoaner_stream_time_to_first_match_microseconds_total",
	} {
		if !found[name] {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
}
