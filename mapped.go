package minoaner

import (
	"errors"
	"fmt"
	"sync"

	"minoaner/internal/binio"
	"minoaner/internal/blocking"
	"minoaner/internal/kb"
	"minoaner/internal/pipeline"
)

// Mapped (lazily decoded) snapshots. OpenIndexFile maps the snapshot
// and decodes only what the lock-free read path needs up front:
//
//   - eagerly: the section directory, config (and its inventory), the
//     KBs' URI tiers, stats, the match lists, the journal, and the
//     sharding record's owner-count verification — everything
//     Query/Matches/Stats-counters touch.
//   - on first demand: the KBs' full tiers (internal/kb lazy open),
//     the block collections, and the prepared/sharded substrate.
//     Section checksums verify on that first access; a corrupted lazy
//     section surfaces as an ErrSnapshotCorrupt-wrapped error from the
//     fallible entry points (QueryKB, SaveIndex, mutations, Close),
//     never a crash.
//
// Every decoded structure copies out of the mapping (strings are
// built, not aliased). The write side (mutations, Prepare, Reshard,
// SaveIndex, Close) first forces every lazy tier via materializeLocked
// and publishes a fully concrete epoch, so the existing copy-on-write
// epoch machinery — and minoanervet's frozen-write rule — hold
// unchanged: nothing ever writes through the mapping.

// lazyParts is the undecoded remainder of a mapped snapshot. All
// epochs cloned from a mapped open share the one instance, so a
// decode happens once per index, not per epoch, and Close can prove
// every published epoch is off the mapping by draining this instance.
type lazyParts struct {
	m *binio.Map

	// hasPrepared records whether the snapshot carries section 8; it
	// makes Prepared()/Sharded() answer correctly before the substrate
	// is decoded.
	hasPrepared bool

	blocksOnce  sync.Once
	nameBlocks  *blocking.Collection
	tokenBlocks *blocking.Collection
	blocksErr   error

	prepOnce sync.Once
	prep     *pipeline.Prepared
	sharded  *pipeline.ShardedPrepared
	prepErr  error
}

// OpenIndexFile maps a snapshot file and decodes it lazily — the
// near-zero-cold-start counterpart of LoadIndexFile. The returned
// index answers Query immediately; heavier structures decode on first
// demand (see Index.Close for releasing the mapping). Both entry
// points accept exactly the same snapshots and answer queries
// bit-identically.
func OpenIndexFile(path string) (*Index, error) {
	m, err := binio.OpenMap(path, snapshotMagic, snapshotVersion)
	if err != nil {
		if errors.Is(err, binio.ErrCorrupt) {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		return nil, err
	}
	ix, err := openIndexMap(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	return ix, nil
}

// OpenIndex decodes an in-memory snapshot image lazily. The slice must
// stay valid (and unmodified) until Close or a full materialization.
func OpenIndex(data []byte) (*Index, error) {
	m, err := binio.BytesMap(data, snapshotMagic, snapshotVersion)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	return openIndexMap(m)
}

// openIndexMap builds the eager tier of a mapped index from the
// section directory, mirroring LoadIndex's validation for everything
// it decodes now and deferring the rest to the lazy accessors.
func openIndexMap(m *binio.Map) (*Index, error) {
	e := &epoch{shards: 1}
	ix := &Index{}
	ix.cur.Store(e)

	b, err := m.Reader(snapConfig)
	if err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrSnapshotCorrupt, err)
	}
	e.cfg = readConfig(b)
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrSnapshotCorrupt, err)
	}
	// The trailing inventory (when present) cross-checks the directory:
	// a bit flip on an optional section's ID would otherwise demote it
	// to "unknown, skipped".
	if b.More() {
		n := b.Int()
		if b.Err() == nil && n > 64 {
			b.Fail("absurd inventory size %d", n)
		}
		for i := 0; i < n && b.Err() == nil; i++ {
			id := b.Uvarint()
			if b.Err() == nil && !m.Has(id) {
				b.Fail("inventoried section %d missing", id)
			}
		}
		if err := b.Err(); err != nil {
			return nil, fmt.Errorf("%w: config inventory: %v", ErrSnapshotCorrupt, err)
		}
	}

	openKB := func(id uint64, name string) (*KB, error) {
		raw, ok := m.Raw(id)
		if !ok {
			return nil, fmt.Errorf("%w: missing %s section", ErrSnapshotCorrupt, name)
		}
		if !kb.LazyCapable(raw) {
			// A pre-sectioned (v1) KB image carries no inner checksums
			// and decodes eagerly; verify the snapshot section's own
			// checksum first, like LoadIndex does.
			raw, err = m.Section(id)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
			}
		}
		built, err := kb.OpenBinary(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
		}
		return &KB{kb: built}, nil
	}
	if e.kb1, err = openKB(snapKB1, "kb1"); err != nil {
		return nil, err
	}
	if e.kb2, err = openKB(snapKB2, "kb2"); err != nil {
		return nil, err
	}
	for _, s := range []struct {
		id   uint64
		name string
	}{{snapNameBlocks, "name-blocks"}, {snapTokenBlocks, "token-blocks"}} {
		if !m.Has(s.id) {
			return nil, fmt.Errorf("%w: missing %s section", ErrSnapshotCorrupt, s.name)
		}
	}

	if b, err = m.Reader(snapStats); err != nil {
		return nil, fmt.Errorf("%w: stats: %v", ErrSnapshotCorrupt, err)
	}
	e.purge.Cutoff1 = b.Int()
	e.purge.Cutoff2 = b.Int()
	e.purge.RemovedBlocks = b.Int()
	e.purge.RemovedComparisons = int64(b.Uvarint())
	e.nameBlockCount = b.Int()
	e.tokenBlockCount = b.Int()
	e.nameComparisons = int64(b.Uvarint())
	e.tokenComparisons = int64(b.Uvarint())
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: stats: %v", ErrSnapshotCorrupt, err)
	}

	if b, err = m.Reader(snapMatches); err != nil {
		return nil, fmt.Errorf("%w: matches: %v", ErrSnapshotCorrupt, err)
	}
	n1, n2 := e.kb1.Len(), e.kb2.Len()
	e.h1 = readPairs(b, n1, n2)
	e.h2 = readPairs(b, n1, n2)
	e.h3 = readPairs(b, n1, n2)
	e.matches = readPairs(b, n1, n2)
	e.discardedByH4 = b.Int()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: matches: %v", ErrSnapshotCorrupt, err)
	}

	if m.Has(snapJournal) {
		jb, err := m.Reader(snapJournal)
		if err != nil {
			return nil, fmt.Errorf("%w: journal: %v", ErrSnapshotCorrupt, err)
		}
		if err := readJournalSection(jb, ix); err != nil {
			return nil, err
		}
	}
	e.lazy = &lazyParts{m: m, hasPrepared: m.Has(snapPrepared)}
	if m.Has(snapSharding) {
		// The owner-count verification needs only KB1's URI tier, so it
		// runs now: a mispartitioned snapshot fails at open, exactly
		// like the eager path.
		sb, err := m.Reader(snapSharding)
		if err != nil {
			return nil, fmt.Errorf("%w: sharding: %v", ErrSnapshotCorrupt, err)
		}
		if err := readShardingSection(sb, ix); err != nil {
			return nil, err
		}
	}

	e.buildLookup()
	ix.mapped = m
	return ix, nil
}

// hasPrepared reports whether the epoch has (or can decode) the
// prepared substrate.
func (e *epoch) hasPrepared() bool {
	return e.prep != nil || (e.lazy != nil && e.lazy.hasPrepared)
}

// materializeKB1 forces KB1's full tier — what every delta-resolution
// path scores against. A nil check on eager indexes.
func (e *epoch) materializeKB1() error {
	if err := e.kb1.kb.Materialize(); err != nil {
		return fmt.Errorf("%w: kb1: %v", ErrSnapshotCorrupt, err)
	}
	return nil
}

// blocks returns the epoch's block collections, decoding them from the
// mapping on first demand.
func (e *epoch) blocks() (name, tok *blocking.Collection, err error) {
	if e.nameBlocks != nil || e.lazy == nil {
		return e.nameBlocks, e.tokenBlocks, nil
	}
	lz := e.lazy
	lz.blocksOnce.Do(func() {
		lz.nameBlocks, lz.blocksErr = e.decodeBlocks(snapNameBlocks, "name-blocks")
		if lz.blocksErr == nil {
			lz.tokenBlocks, lz.blocksErr = e.decodeBlocks(snapTokenBlocks, "token-blocks")
		}
	})
	return lz.nameBlocks, lz.tokenBlocks, lz.blocksErr
}

func (e *epoch) decodeBlocks(id uint64, name string) (*blocking.Collection, error) {
	// The embedded collection format checksums its own sections, so the
	// raw payload decodes without an extra outer verification pass.
	raw, ok := e.lazy.m.Raw(id)
	if !ok {
		return nil, fmt.Errorf("%w: missing %s section", ErrSnapshotCorrupt, name)
	}
	c, err := blocking.ReadBinaryData(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
	}
	if n1, n2 := c.KBSizes(); n1 != e.kb1.Len() || n2 != e.kb2.Len() {
		return nil, fmt.Errorf("%w: %s built for KB sizes (%d,%d), snapshot KBs have (%d,%d)",
			ErrSnapshotCorrupt, name, n1, n2, e.kb1.Len(), e.kb2.Len())
	}
	return c, nil
}

// preparedSide returns the epoch's delta-path substrate, decoding the
// persisted one from the mapping on first demand. (nil, nil, nil)
// means the epoch has none — the caller falls back to the full plan.
func (e *epoch) preparedSide() (*pipeline.Prepared, *pipeline.ShardedPrepared, error) {
	if e.prep != nil || e.lazy == nil || !e.lazy.hasPrepared {
		return e.prep, e.sharded, nil
	}
	lz := e.lazy
	lz.prepOnce.Do(func() {
		lz.prep, lz.prepErr = e.decodePrepared()
		if lz.prepErr == nil {
			lz.sharded = shardedFromPrep(lz.prep, nil, e.shards)
		}
	})
	return lz.prep, lz.sharded, lz.prepErr
}

// decodePrepared restores the prepared section from the mapping. The
// neighbor lists after the embedded substrate have no checksums of
// their own, so the section's outer checksum is verified here (on this
// first access), then decodePreparedBody revalidates exactly as the
// eager load does.
func (e *epoch) decodePrepared() (*pipeline.Prepared, error) {
	payload, err := e.lazy.m.Section(snapPrepared)
	if err != nil {
		return nil, fmt.Errorf("%w: prepared: %v", ErrSnapshotCorrupt, err)
	}
	return decodePreparedBody(binio.NewBytesReader(payload), e.kb1, e.cfg)
}

// materializeLocked forces every lazy tier of the current epoch and
// publishes a fully concrete clone. The write side calls it under mu
// before touching state (mutations, Reshard, SaveIndex, Close), so
// copy-on-write epoch derivation never starts from a partially decoded
// epoch. After it returns nil, no published structure references the
// mapping: the shared lazy parts and both KBs' sync.Onces are drained,
// which also covers readers still holding older epoch pointers.
func (ix *Index) materializeLocked() error {
	e := ix.cur.Load()
	if e.lazy == nil {
		return nil
	}
	for _, side := range []struct {
		name string
		k    *KB
	}{{"kb1", e.kb1}, {"kb2", e.kb2}} {
		if err := side.k.kb.Materialize(); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, side.name, err)
		}
		if err := side.k.kb.MaterializeSources(); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, side.name, err)
		}
	}
	name, tok, err := e.blocks()
	if err != nil {
		return err
	}
	prep, sharded, err := e.preparedSide()
	if err != nil {
		return err
	}
	ne := e.clone()
	ne.nameBlocks, ne.tokenBlocks = name, tok
	ne.prep, ne.sharded = prep, sharded
	ne.lazy = nil
	ix.cur.Store(ne)
	return nil
}

// Mapped reports whether the index still holds a snapshot mapping
// (opened via OpenIndexFile/OpenIndex and not yet closed).
func (ix *Index) Mapped() bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.mapped != nil
}

// Close releases the mapping behind an index opened with OpenIndexFile.
// It first materializes every lazy structure — so epoch pointers held
// by in-flight readers never touch the mapping afterwards — then
// unmaps. On a decode failure the mapping stays open and the error is
// returned; the index keeps working either way. Close is idempotent
// and a no-op for eagerly loaded or built indexes.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.mapped == nil {
		return nil
	}
	if err := ix.materializeLocked(); err != nil {
		return err
	}
	m := ix.mapped
	ix.mapped = nil
	return m.Close()
}
